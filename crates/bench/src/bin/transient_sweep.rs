//! Transient-fault sweep: links die and repair *mid-run* (MTBF ×
//! repair-time × load) and the network must come back.
//!
//! `resilience_sweep` answers the static question — latency on a
//! network whose dead links stay dead. This sweep answers the
//! operational one the Slim Fly deployment study and the multipathing
//! survey both stress: what happens *during* failure and re-convergence.
//! Each cell draws a seeded, connectivity-safe [`FaultSchedule`] (fault
//! count = `links · window / MTBF`), wraps the topology in
//! [`TransientTopo`], and runs PF vs SF under MIN and UGAL-PF with both
//! in-flight policies: drop-and-retransmit at source, and drain. Faults
//! land inside the warmup window and every link repairs before
//! measurement, so the measurement-window delivery ratio must return to
//! exactly 1.0 at the swept sub-saturation loads.
//!
//! Scales: `--smoke` (CI-sized instances), default (Table V topologies,
//! reduced windows), `PF_FULL=1` (full §VIII-A windows and more loads).
//!
//! Exits non-zero if any cell:
//!
//! * fails to deliver every measured packet (delivery ratio < 1.0 after
//!   repair at sub-saturation load),
//! * lets any flit traverse a fully-down link (`down_link_flits > 0`),
//! * clamps the hop-indexed VC class budget during the stale-table
//!   serving window (`vc_class_clamps > 0`), or
//! * never exercised the machinery (no retransmissions/drops anywhere
//!   under drop-and-retransmit, or no table swap in a faulted run —
//!   a vacuous sweep is a broken sweep).

#![allow(clippy::print_stdout)] // figure/table emitters print their artifact

use pf_bench::jsonl::Row;
use pf_graph::FaultSchedule;
use pf_sim::{load_curve, InFlightPolicy, Routing, SimConfig, TrafficPattern};
use pf_topo::{PolarFlyTopo, SlimFly, Topology, TransientTopo};

/// Schedule seed: one draw per (topology, MTBF, repair), shared by both
/// routings and both policies so they face identical fault timelines.
const FAULT_SEED: u64 = 0x7A11;

struct Scale {
    topos: Vec<Box<dyn Topology>>,
    /// Per-link mean cycles between failures.
    mtbfs: Vec<f64>,
    /// Cycles from failure to repair.
    repairs: Vec<u32>,
    /// Offered loads (all sub-saturation: delivery must be 1.0).
    loads: Vec<f64>,
    /// Failures land in `[0, fail_window)`; `fail_window + max repair`
    /// stays inside warmup so measurement sees a repaired network.
    fail_window: u32,
    cfg: SimConfig,
}

fn scale(smoke: bool) -> Scale {
    // 8 hop-indexed VC classes cover the residual diameters and detours
    // these schedules produce (same headroom as resilience_sweep).
    if smoke {
        Scale {
            topos: vec![
                Box::new(PolarFlyTopo::new(7, 4).unwrap()),
                Box::new(SlimFly::new(5, 4).unwrap()),
            ],
            mtbfs: vec![2_000.0, 8_000.0],
            repairs: vec![120, 300],
            loads: vec![0.1, 0.3],
            fail_window: 200,
            cfg: SimConfig::default()
                .warmup(500)
                .measure(300)
                .drain_max(1500)
                .vc_classes(8)
                .convergence_delay(100),
        }
    } else {
        let full = pf_bench::full_scale();
        Scale {
            topos: vec![
                Box::new(PolarFlyTopo::new(31, 16).unwrap()),
                Box::new(SlimFly::new(23, 18).unwrap()),
            ],
            mtbfs: vec![100_000.0, 400_000.0],
            repairs: vec![150, 450],
            loads: if full {
                vec![0.1, 0.25, 0.4, 0.55]
            } else {
                vec![0.1, 0.3]
            },
            fail_window: 300,
            cfg: if full {
                SimConfig::default().vc_classes(8).convergence_delay(150)
            } else {
                SimConfig::default()
                    .warmup(800)
                    .measure(400)
                    .drain_max(2500)
                    .vc_classes(8)
                    .convergence_delay(150)
            },
        }
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let s = scale(smoke);
    let routings = [Routing::Min, Routing::UgalPf];
    let policies = [InFlightPolicy::DropRetransmit, InFlightPolicy::Drain];

    println!("Transient-fault sweep — MTBF × repair × load, uniform traffic");
    println!("(delivery must return to 1.0 after repair; no flit on a down link;");
    println!(" no VC-class clamp in the stale-table window;");
    println!(" data rows are JSON lines — filter with `grep '^{{'`)\n");

    let mut broken = 0usize;
    let mut retransmissions = 0u64;
    let mut swaps_seen = 0u32;
    for topo in &s.topos {
        for (mi, &mtbf) in s.mtbfs.iter().enumerate() {
            for (ri, &repair) in s.repairs.iter().enumerate() {
                // Expected failures over the window, as a sampled ratio.
                let ratio = (f64::from(s.fail_window) / mtbf).min(0.12);
                let seed = FAULT_SEED ^ ((mi as u64) << 8) ^ ((ri as u64) << 16);
                let schedule = FaultSchedule::sample_connected_links(
                    topo.graph(),
                    ratio,
                    s.fail_window,
                    repair,
                    seed,
                );
                let faults = schedule.len();
                let transient = TransientTopo::new(topo.as_ref(), schedule);
                for routing in routings {
                    for policy in policies {
                        let cfg = s.cfg.clone().fault_policy(policy);
                        let curve = load_curve(
                            &transient,
                            routing,
                            TrafficPattern::Uniform,
                            &s.loads,
                            &cfg,
                        );
                        for p in &curve.points {
                            let delivered_all = !p.saturated && p.delivered == p.generated;
                            let clean = p.down_link_flits == 0 && p.vc_class_clamps == 0;
                            let ok = delivered_all && clean;
                            if !ok {
                                broken += 1;
                            }
                            retransmissions += p.retransmitted_packets;
                            swaps_seen += p.table_swaps;
                            Row::new("transient")
                                .str("topology", &topo.name())
                                .str("routing", curve.routing)
                                .str(
                                    "policy",
                                    match policy {
                                        InFlightPolicy::DropRetransmit => "drop",
                                        InFlightPolicy::Drain => "drain",
                                    },
                                )
                                .f64("mtbf", mtbf)
                                .u64("repair", u64::from(repair))
                                .u64("faults", faults as u64)
                                .sim_result(p)
                                .bool("ok", ok)
                                .emit();
                            if !delivered_all {
                                eprintln!(
                                    "BROKEN: {} / {} / {:?} mtbf={mtbf} repair={repair} \
                                     load={:.2}: delivery {:.4} after repair",
                                    topo.name(),
                                    curve.routing,
                                    policy,
                                    p.offered_load,
                                    p.delivery_ratio()
                                );
                            }
                            if p.down_link_flits > 0 {
                                eprintln!(
                                    "BROKEN: {} / {}: {} flit(s) traversed a down link",
                                    topo.name(),
                                    curve.routing,
                                    p.down_link_flits
                                );
                            }
                            if p.vc_class_clamps > 0 {
                                eprintln!(
                                    "BROKEN: {} / {}: VC class budget clamped {} time(s)",
                                    topo.name(),
                                    curve.routing,
                                    p.vc_class_clamps
                                );
                            }
                            if faults > 0 && p.table_swaps == 0 {
                                broken += 1;
                                eprintln!(
                                    "BROKEN: {} / {}: {faults} fault(s) but no table swap",
                                    topo.name(),
                                    curve.routing
                                );
                            }
                        }
                    }
                }
                println!();
            }
        }
    }

    if retransmissions == 0 {
        broken += 1;
        eprintln!("BROKEN: no cell ever retransmitted — the faults never bit (vacuous sweep)");
    }
    if swaps_seen == 0 {
        broken += 1;
        eprintln!("BROKEN: no table re-convergence anywhere (vacuous sweep)");
    }
    if broken > 0 {
        eprintln!("FAIL: {broken} violation(s)");
        std::process::exit(1);
    }
    println!(
        "OK: delivery returned to 1.0 everywhere; 0 down-link flits; 0 VC clamps; \
         {retransmissions} retransmissions, {swaps_seen} table swaps exercised"
    );
}
