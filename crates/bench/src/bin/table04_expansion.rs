//! Table IV: characteristics of the two incremental-expansion methods,
//! measured on expanded instances.

#![allow(clippy::print_stdout)] // figure/table emitters print their artifact

use polarfly::expansion::{replicate_non_quadric, replicate_quadric, stats};
use polarfly::{Layout, PolarFly};

fn main() {
    let q: u64 = if pf_bench::full_scale() { 31 } else { 13 };
    println!("Table IV — expansion methods measured on PF(q={q}) (paper: quadric");
    println!("scalability (q+1)/2, non-uniform degrees, D=2; non-quadric ~q, uniform, D=3)\n");
    let pf = PolarFly::new(q).unwrap();
    let layout = Layout::new(&pf);
    println!(
        "{:<14} {:>6} {:>9} {:>13} {:>9} {:>9} {:>9} {:>9}",
        "Method", "steps", "routers", "scalability", "min deg", "max deg", "diameter", "ASPL"
    );
    for steps in [1usize, 2, 4] {
        let ex = replicate_quadric(&pf, &layout, steps);
        let s = stats(&pf, &ex);
        assert_eq!(s.rewired_links, 0);
        println!(
            "{:<14} {:>6} {:>9} {:>13.2} {:>9} {:>9} {:>9} {:>9.3}",
            "Quadric",
            steps,
            ex.router_count(),
            s.scalability,
            s.degree_range.0,
            s.degree_range.1,
            s.diameter,
            s.aspl
        );
    }
    for steps in [1usize, 2, 4] {
        let ex = replicate_non_quadric(&pf, &layout, steps);
        let s = stats(&pf, &ex);
        assert_eq!(s.rewired_links, 0);
        println!(
            "{:<14} {:>6} {:>9} {:>13.2} {:>9} {:>9} {:>9} {:>9.3}",
            "Non-quadric",
            steps,
            ex.router_count(),
            s.scalability,
            s.degree_range.0,
            s.degree_range.1,
            s.diameter,
            s.aspl
        );
    }
    println!("\nrewired links = 0 in all cases (expansion never moves existing cables)");
}
