//! Runs every analytic and structural experiment harness in sequence and
//! summarizes the reproduction status (the simulation figures are listed
//! with their commands rather than executed — they take minutes to hours;
//! see EXPERIMENTS.md for recorded results).

#![allow(clippy::print_stdout)] // figure/table emitters print their artifact

use std::process::Command;

fn main() {
    let fast = [
        "fig01_design_space",
        "fig02_moore_bound",
        "table01_feasibility",
        "table02_triangles",
        "table03_intermediate",
        "table04_expansion",
        "table05_configs",
        "table06_path_diversity",
        "fig13_layout",
        "fig15_cost",
    ];
    let slow = [
        "fig08_comparison",
        "fig09_perm_hops",
        "fig10_size_sweep",
        "fig11_expansion",
        "fig12_bisection",
        "fig14_resilience",
        "ablation_study",
    ];
    let exe_dir = std::env::current_exe()
        .ok()
        .and_then(|p| p.parent().map(std::path::Path::to_path_buf))
        .expect("locate target dir");

    let mut failures = Vec::new();
    for bin in fast {
        println!("================================================================");
        println!("== {bin}");
        println!("================================================================");
        let status = Command::new(exe_dir.join(bin)).status();
        match status {
            Ok(s) if s.success() => {}
            other => {
                eprintln!("** {bin} failed: {other:?}");
                failures.push(bin);
            }
        }
    }
    println!("================================================================");
    println!("Fast experiments complete ({} failures).", failures.len());
    println!("Simulation experiments (run separately; PF_FULL=1 for paper scale):");
    for bin in slow {
        println!("  cargo run --release -p pf-bench --bin {bin}");
    }
    if !failures.is_empty() {
        std::process::exit(1);
    }
}
