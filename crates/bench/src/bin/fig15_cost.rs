//! Figure 15: network cost per node normalized to PolarFly under
//! iso-injection-bandwidth constraints (co-packaged optical IO counting).

#![allow(clippy::print_stdout)] // figure/table emitters print their artifact

use polarfly::cost::{paper_configuration, relative_costs, TrafficScenario};

fn main() {
    println!("Figure 15 — normalized network cost (paper: uniform 1/1.24/1.81/5.19,");
    println!("permutation 1/1.21/2.25/2.68)\n");
    for (name, scenario) in [
        ("Iso Bandwidth: Uniform", TrafficScenario::Uniform),
        ("Iso Bandwidth: Permutation", TrafficScenario::Permutation),
    ] {
        println!("# {name}");
        for bar in relative_costs(&paper_configuration(), scenario) {
            println!("  {:<10} {:>6.2}", bar.name, bar.relative_cost);
        }
        println!();
    }
    println!(
        "OIO budget check: Fat-tree = 4864 switches x 4 OIO + 1024 nodes x 2 OIO = 21504 modules"
    );
}
