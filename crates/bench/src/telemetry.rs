//! JSONL emitters for the engine telemetry layer
//! (`pf_sim::TelemetryReport`): epoch time-series rows, sampled packet
//! trace rows, and the phase-profile summary.
//!
//! Row kinds (all carry a caller-supplied `run` label tying them back
//! to their `collective`/`point` data row):
//!
//! * `epoch` — one row per [`EpochRecord`]: counter deltas over the
//!   epoch plus boundary gauges (VOQ histogram as a JSON array).
//! * `trace` — one row per [`TraceEvent`], capped at
//!   [`TRACE_ROW_CAP`] rows per run so a 1/1-sampled saturation run
//!   cannot flood the stream; the summary row carries the full counts,
//!   so truncation is always visible, never silent.
//! * `telemetry_summary` — totals (epochs/traces collected, dropped at
//!   the engine caps, emitted here) and the per-phase wall-clock
//!   nanoseconds keyed by [`PROF_PHASE_LABELS`] (all zeros unless the
//!   workspace was built with `--features phase-profile`).

use crate::jsonl::Row;
use pf_sim::telemetry::{kind_label, PROF_PHASE_LABELS};
use pf_sim::{EpochRecord, TelemetryReport, TraceEvent};

/// Maximum `trace` rows emitted per run (the summary row reports how
/// many events the cap cut).
pub const TRACE_ROW_CAP: usize = 2048;

/// Builds one `epoch` row.
#[must_use]
pub fn epoch_row(run: &str, e: &EpochRecord) -> Row {
    let hist: Vec<u64> = e.voq_hist.iter().map(|&c| u64::from(c)).collect();
    Row::new("epoch")
        .str("run", run)
        .u64("end_cycle", u64::from(e.end_cycle))
        .u64("span", u64::from(e.span))
        .u64("generated", e.generated)
        .u64("delivered", e.delivered)
        .u64("flits_ejected", e.flits_ejected)
        .u64("link_flits", e.link_flits)
        .u64("active_links", u64::from(e.active_links))
        .u64("max_link_flits", e.max_link_flits)
        .u64_array("voq_hist", &hist)
        .u64("credit_stalls", e.credit_stalls)
        .u64("vc_stalls", e.vc_stalls)
        .u64("retransmitted", e.retransmitted)
        .u64("dropped_flits", e.dropped_flits)
        .u64("awake_routers", u64::from(e.awake_routers))
        .u64("dozing_routers", u64::from(e.dozing_routers))
        .u64("asleep_routers", u64::from(e.asleep_routers))
        .u64("in_flight_flits", e.in_flight_flits)
        .u64("source_backlog", e.source_backlog)
}

/// Builds one `trace` row.
#[must_use]
pub fn trace_row(run: &str, t: &TraceEvent) -> Row {
    Row::new("trace")
        .str("run", run)
        .u64("serial", t.serial)
        .u64("cycle", u64::from(t.cycle))
        .str("event", kind_label(t.kind))
        .u64("router", u64::from(t.router))
        .u64("a", u64::from(t.a))
        .u64("b", u64::from(t.b))
}

/// Builds the `telemetry_summary` row (totals + phase profile).
#[must_use]
pub fn summary_row(run: &str, r: &TelemetryReport, trace_rows_emitted: usize) -> Row {
    let mut row = Row::new("telemetry_summary")
        .str("run", run)
        .u64("epochs", r.epochs.len() as u64)
        .u64("epochs_dropped", r.epochs_dropped)
        .u64("traces", r.traces.len() as u64)
        .u64("trace_rows_emitted", trace_rows_emitted as u64)
        .u64("traces_dropped", r.traces_dropped);
    for (label, ns) in PROF_PHASE_LABELS.iter().zip(r.phase_ns) {
        row = row.u64(&format!("{label}_ns"), ns);
    }
    row
}

/// Renders a full report as JSONL lines: every epoch, up to
/// [`TRACE_ROW_CAP`] traces, then the summary row (always last, so a
/// reader can reconcile the emitted rows against the totals).
pub fn report_lines(run: &str, r: &TelemetryReport) -> Vec<String> {
    let mut out = Vec::with_capacity(r.epochs.len() + r.traces.len().min(TRACE_ROW_CAP) + 1);
    for e in &r.epochs {
        out.push(epoch_row(run, e).finish());
    }
    let emitted = r.traces.len().min(TRACE_ROW_CAP);
    for t in &r.traces[..emitted] {
        out.push(trace_row(run, t).finish());
    }
    out.push(summary_row(run, r, emitted).finish());
    out
}

/// Prints a full report to stdout (the sweep binaries' emit path).
pub fn emit_report(run: &str, r: &TelemetryReport) {
    for line in report_lines(run, r) {
        println!("{line}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> TelemetryReport {
        TelemetryReport {
            epochs: vec![EpochRecord {
                end_cycle: 256,
                span: 256,
                generated: 10,
                delivered: 8,
                flits_ejected: 32,
                link_flits: 120,
                active_links: 14,
                max_link_flits: 30,
                voq_hist: [3, 1, 0, 0, 0, 0, 0, 0],
                credit_stalls: 2,
                vc_stalls: 1,
                retransmitted: 0,
                dropped_flits: 0,
                awake_routers: 5,
                dozing_routers: 2,
                asleep_routers: 0,
                in_flight_flits: 9,
                source_backlog: 4,
            }],
            epochs_dropped: 0,
            traces: (0..3)
                .map(|i| TraceEvent {
                    serial: 8,
                    cycle: 10 + i,
                    kind: pf_sim::telemetry::TRACE_GRANT,
                    router: 2,
                    a: 7,
                    b: u32::from(i as u16),
                })
                .collect(),
            traces_dropped: 5,
            phase_ns: [1, 2, 3, 4, 5],
        }
    }

    #[test]
    fn report_lines_cover_epochs_traces_and_summary() {
        let lines = report_lines("pf-min", &sample_report());
        assert_eq!(lines.len(), 1 + 3 + 1);
        assert!(lines[0].starts_with(r#"{"kind":"epoch","run":"pf-min""#));
        assert!(lines[0].contains(r#""voq_hist":[3,1,0,0,0,0,0,0]"#));
        assert!(lines[1].contains(r#""event":"grant""#));
        let summary = lines.last().unwrap();
        assert!(summary.contains(r#""traces":3"#));
        assert!(summary.contains(r#""trace_rows_emitted":3"#));
        assert!(summary.contains(r#""traces_dropped":5"#));
        // Every phase label lands in the summary with its counter.
        for (label, ns) in PROF_PHASE_LABELS.iter().zip([1u64, 2, 3, 4, 5]) {
            assert!(
                summary.contains(&format!(r#""{label}_ns":{ns}"#)),
                "{summary}"
            );
        }
    }

    #[test]
    fn trace_rows_are_capped_with_visible_totals() {
        let mut r = sample_report();
        r.traces = (0..TRACE_ROW_CAP as u32 + 10)
            .map(|i| TraceEvent {
                serial: 0,
                cycle: i,
                kind: pf_sim::telemetry::TRACE_INJECT,
                router: 0,
                a: 1,
                b: 0,
            })
            .collect();
        let lines = report_lines("x", &r);
        let trace_rows = lines
            .iter()
            .filter(|l| l.starts_with(r#"{"kind":"trace""#))
            .count();
        assert_eq!(trace_rows, TRACE_ROW_CAP);
        let summary = lines.last().unwrap();
        assert!(summary.contains(&format!(r#""traces":{}"#, TRACE_ROW_CAP + 10)));
        assert!(summary.contains(&format!(r#""trace_rows_emitted":{TRACE_ROW_CAP}"#)));
    }
}
