//! Slim Fly — the McKay–Miller–Širáň (MMS) diameter-2 family (Besta &
//! Hoefler, SC'14), the paper's most competitive baseline.
//!
//! For a prime power `q = 4w + δ`, `δ ∈ {−1, 0, 1}`, the MMS graph has
//! `N = 2q²` routers of degree `k = (3q − δ)/2` and diameter 2 — 8/9 of
//! the Moore bound asymptotically. Routers form two parts of `q` "columns"
//! × `q` rows:
//!
//! * `(0, x, y) ~ (0, x, y′)`  iff `y − y′ ∈ X`
//! * `(1, m, c) ~ (1, m, c′)`  iff `c − c′ ∈ X′`
//! * `(0, x, y) ~ (1, m, c)`   iff `y = m·x + c` (arithmetic in `F_q`)
//!
//! where `X, X′ ⊆ F_q*` are symmetric generator sets of size `(q − δ)/2`.
//! Diameter 2 is *equivalent* to the algebraic conditions (derived from the
//! case analysis of common neighbors):
//!
//! 1. `X ∪ X′ = F_q*` (cross-part pairs), and
//! 2. `F_q* \ X ⊆ X − X` and `F_q* \ X′ ⊆ X′ − X′` (same-column pairs).
//!
//! The SC'14 paper spells the sets out for `q ≡ 1 (mod 4)` (quadratic
//! residues / non-residues); for the other residues we construct the
//! standard candidates from powers of a primitive element and *verify* the
//! conditions, falling back to a bounded seeded search — every constructed
//! instance is therefore diameter-2 by checked construction, not by faith.

use pf_galois::Gf;
use pf_graph::{Csr, GraphBuilder};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::traits::Topology;

/// Errors from [`SlimFly::new`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SlimFlyError {
    /// `q` is not a prime power.
    NotPrimePower(u64),
    /// `q ≡ 2 (mod 4)` (only `q = 2`, which has no MMS parameters).
    BadResidue(u64),
    /// No valid generator sets found within the search budget.
    NoGeneratorSets(u64),
}

impl std::fmt::Display for SlimFlyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SlimFlyError::NotPrimePower(q) => write!(f, "q = {q} is not a prime power"),
            SlimFlyError::BadResidue(q) => write!(f, "q = {q} ≡ 2 (mod 4) is not an MMS parameter"),
            SlimFlyError::NoGeneratorSets(q) => {
                write!(f, "no MMS generator sets found for q = {q}")
            }
        }
    }
}

impl std::error::Error for SlimFlyError {}

/// A Slim Fly (MMS) topology instance.
///
/// # Examples
///
/// ```
/// use pf_topo::{SlimFly, Topology};
///
/// // The paper's Table V baseline: q = 23 → 1058 routers of radix 35.
/// let sf = SlimFly::new(23, 18).unwrap();
/// assert_eq!(sf.router_count(), 1058);
/// assert_eq!(sf.degree(), 35);
/// ```
#[derive(Debug)]
pub struct SlimFly {
    q: u32,
    delta: i32,
    graph: Csr,
    p: usize,
    gen_x: Vec<u32>,
    gen_xp: Vec<u32>,
}

impl SlimFly {
    /// Builds the MMS graph for prime power `q` with `p` endpoints per
    /// router.
    pub fn new(q: u64, p: usize) -> Result<Self, SlimFlyError> {
        let field = Gf::new(q).map_err(|_| SlimFlyError::NotPrimePower(q))?;
        let delta: i32 = match q % 4 {
            1 => 1,
            3 => -1,
            0 => 0,
            _ => return Err(SlimFlyError::BadResidue(q)),
        };
        let (gen_x, gen_xp) =
            find_generator_sets(&field, delta).ok_or(SlimFlyError::NoGeneratorSets(q))?;
        let graph = build_graph(&field, &gen_x, &gen_xp);
        Ok(SlimFly {
            q: field.order(),
            delta,
            graph,
            p,
            gen_x,
            gen_xp,
        })
    }

    /// The MMS parameter `q`.
    pub fn q(&self) -> u32 {
        self.q
    }

    /// `δ` with `q = 4w + δ`.
    pub fn delta(&self) -> i32 {
        self.delta
    }

    /// Network degree `k = (3q − δ)/2`.
    pub fn degree(&self) -> u32 {
        ((3 * self.q as i64 - self.delta as i64) / 2) as u32
    }

    /// The generator sets `(X, X′)` used.
    pub fn generator_sets(&self) -> (&[u32], &[u32]) {
        (&self.gen_x, &self.gen_xp)
    }

    /// Router id of `(part, col, row)`.
    pub fn router_id(&self, part: u32, col: u32, row: u32) -> u32 {
        let q = self.q;
        part * q * q + col * q + row
    }
}

impl Topology for SlimFly {
    fn name(&self) -> String {
        format!("SF(q={},p={})", self.q, self.p)
    }

    fn graph(&self) -> &Csr {
        &self.graph
    }

    fn endpoints(&self, _r: u32) -> usize {
        self.p
    }
}

/// Checks the two diameter-2 conditions plus symmetry and size.
fn valid_sets(f: &Gf, x: &[u32], xp: &[u32], delta: i32) -> bool {
    let q = f.order() as i64;
    let want = ((q - delta as i64) / 2) as usize;
    if x.len() != want || xp.len() != want {
        return false;
    }
    let mut in_x = vec![false; f.order() as usize];
    let mut in_xp = vec![false; f.order() as usize];
    for &e in x {
        if e == 0 || in_x[e as usize] {
            return false;
        }
        in_x[e as usize] = true;
    }
    for &e in xp {
        if e == 0 || in_xp[e as usize] {
            return false;
        }
        in_xp[e as usize] = true;
    }
    // Symmetry: X = −X, X′ = −X′.
    for e in 1..f.order() {
        if in_x[e as usize] != in_x[f.neg(e) as usize] {
            return false;
        }
        if in_xp[e as usize] != in_xp[f.neg(e) as usize] {
            return false;
        }
    }
    // Condition 1: X ∪ X′ covers F_q*.
    for e in 1..f.order() {
        if !in_x[e as usize] && !in_xp[e as usize] {
            return false;
        }
    }
    // Condition 2: every non-member difference is reachable as a member
    // difference (same-column 2-hop paths exist).
    for (members, set) in [(&in_x, x), (&in_xp, xp)] {
        let mut diffs = vec![false; f.order() as usize];
        for &a in set {
            for &b in set {
                diffs[f.sub(a, b) as usize] = true;
            }
        }
        for e in 1..f.order() {
            if !members[e as usize] && !diffs[e as usize] {
                return false;
            }
        }
    }
    true
}

/// Produces validated generator sets: known closed-form candidates first,
/// then a bounded seeded search over symmetric sets.
fn find_generator_sets(f: &Gf, delta: i32) -> Option<(Vec<u32>, Vec<u32>)> {
    let q = f.order();
    let omega = f.generator();
    let n = q - 1; // multiplicative group order

    let powers: Vec<u32> = {
        let mut acc = 1u32;
        (0..n)
            .map(|_| {
                let v = acc;
                acc = f.mul(acc, omega);
                v
            })
            .collect()
    };

    let mut candidates: Vec<(Vec<u32>, Vec<u32>)> = Vec::new();
    match delta {
        1 => {
            // Quadratic residues vs non-residues (Besta & Hoefler §3).
            let x: Vec<u32> = (0..n).step_by(2).map(|i| powers[i as usize]).collect();
            let xp: Vec<u32> = (1..n).step_by(2).map(|i| powers[i as usize]).collect();
            candidates.push((x, xp));
        }
        -1 => {
            // q = 4w − 1: X = {±ω^{2j}}, X′ = {±ω^{2j+1}}, j < w.
            let w = (q + 1) / 4;
            let sym = |start: u32| -> Vec<u32> {
                let mut out = Vec::with_capacity(2 * w as usize);
                for j in 0..w {
                    let e = powers[((start + 2 * j) % n) as usize];
                    out.push(e);
                    out.push(f.neg(e));
                }
                out.sort_unstable();
                out.dedup();
                out
            };
            candidates.push((sym(0), sym(1)));
            candidates.push((sym(1), sym(0)));
        }
        0 => {
            // q = 2^s: {even exponents} / {odd exponents} of sizes q/2 —
            // 2 is coprime to the odd group order so both hit q/2 values.
            let x: Vec<u32> = (0..q / 2).map(|j| powers[((2 * j) % n) as usize]).collect();
            let xp: Vec<u32> = (0..q / 2)
                .map(|j| powers[((2 * j + 1) % n) as usize])
                .collect();
            candidates.push((x, xp));
        }
        _ => unreachable!(),
    }

    for (x, xp) in &candidates {
        if valid_sets(f, x, xp, delta) {
            return Some((x.clone(), xp.clone()));
        }
    }

    // Bounded seeded search: random symmetric sets of the right size.
    let want = ((q as i64 - delta as i64) / 2) as usize;
    let mut rng = StdRng::seed_from_u64(0x5F17_u64 ^ u64::from(q));
    for _ in 0..20_000 {
        let (x, xp) = random_symmetric_pair(f, want, &mut rng);
        if valid_sets(f, &x, &xp, delta) {
            return Some((x, xp));
        }
    }
    None
}

/// Draws a random symmetric set of size `want` and pairs it with a second
/// random symmetric set biased to cover the complement.
fn random_symmetric_pair(f: &Gf, want: usize, rng: &mut StdRng) -> (Vec<u32>, Vec<u32>) {
    let draw = |rng: &mut StdRng, forced: &[u32]| -> Vec<u32> {
        let mut pool: Vec<u32> = (1..f.order()).collect();
        pool.shuffle(rng);
        let mut set = vec![false; f.order() as usize];
        let mut out: Vec<u32> = Vec::with_capacity(want);
        let push_pair = |e: u32, out: &mut Vec<u32>, set: &mut Vec<bool>| {
            if !set[e as usize] {
                set[e as usize] = true;
                out.push(e);
                let ne = f.neg(e);
                if !set[ne as usize] {
                    set[ne as usize] = true;
                    out.push(ne);
                }
            }
        };
        for &e in forced {
            if out.len() >= want {
                break;
            }
            push_pair(e, &mut out, &mut set);
        }
        for &e in &pool {
            if out.len() >= want {
                break;
            }
            push_pair(e, &mut out, &mut set);
        }
        out.truncate(want);
        out
    };
    let x = draw(rng, &[]);
    // Bias X′ to contain the uncovered complement of X (condition 1).
    let mut missing: Vec<u32> = (1..f.order()).filter(|&e| !x.contains(&e)).collect();
    missing.shuffle(rng);
    let xp = draw(rng, &missing);
    (x, xp)
}

/// Materializes the MMS graph from validated generator sets.
fn build_graph(f: &Gf, x: &[u32], xp: &[u32]) -> Csr {
    let q = f.order();
    let id = |part: u32, col: u32, row: u32| part * q * q + col * q + row;
    let mut b = GraphBuilder::new(2 * (q as usize) * (q as usize));
    // Intra-column edges in both parts.
    for (part, set) in [(0u32, x), (1u32, xp)] {
        for col in 0..q {
            for row in 0..q {
                for &d in set {
                    let row2 = f.add(row, d);
                    if row < row2 {
                        b.add_edge(id(part, col, row), id(part, col, row2));
                    }
                }
            }
        }
    }
    // Cross edges: y = m·x + c.
    for xcol in 0..q {
        for m in 0..q {
            for c in 0..q {
                let y = f.add(f.mul(m, xcol), c);
                b.add_edge(id(0, xcol, y), id(1, m, c));
            }
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pf_graph::bfs;

    fn check_instance(q: u64) {
        let sf = SlimFly::new(q, 1).unwrap();
        let n = 2 * q * q;
        assert_eq!(sf.router_count() as u64, n, "q={q}");
        assert!(
            sf.graph().is_regular(sf.degree() as usize),
            "q={q} not regular"
        );
        assert_eq!(bfs::diameter(sf.graph()), Some(2), "q={q} diameter");
    }

    #[test]
    fn delta_plus_one_instances() {
        for q in [5u64, 9, 13, 17] {
            check_instance(q);
        }
    }

    #[test]
    fn delta_minus_one_instances() {
        for q in [3u64, 7, 11, 19, 23] {
            check_instance(q);
        }
    }

    #[test]
    fn delta_zero_instances() {
        for q in [4u64, 8, 16] {
            check_instance(q);
        }
    }

    #[test]
    fn q5_is_hoffman_singleton() {
        // MMS(q=5) is the Hoffman–Singleton graph: 50 vertices, 7-regular,
        // diameter 2, girth 5 — i.e. a Moore graph: adjacent vertices share
        // 0 neighbors, non-adjacent share exactly 1.
        let sf = SlimFly::new(5, 1).unwrap();
        let g = sf.graph();
        assert_eq!(g.vertex_count(), 50);
        assert!(g.is_regular(7));
        for u in 0..50u32 {
            for v in (u + 1)..50u32 {
                let common = g
                    .neighbors(u)
                    .iter()
                    .filter(|&&w| g.neighbors(v).binary_search(&w).is_ok())
                    .count();
                let expect = if g.has_edge(u, v) { 0 } else { 1 };
                assert_eq!(common, expect, "Moore-graph property violated at ({u},{v})");
            }
        }
    }

    #[test]
    fn table_v_configuration() {
        // Table V: SF q=23, p=18 → 1058 routers, network radix 35.
        let sf = SlimFly::new(23, 18).unwrap();
        assert_eq!(sf.router_count(), 1058);
        assert_eq!(sf.degree(), 35);
        assert_eq!(sf.total_endpoints(), 1058 * 18);
    }

    #[test]
    fn rejects_bad_parameters() {
        assert_eq!(
            SlimFly::new(6, 1).unwrap_err(),
            SlimFlyError::NotPrimePower(6)
        );
        assert_eq!(SlimFly::new(2, 1).unwrap_err(), SlimFlyError::BadResidue(2));
    }

    #[test]
    fn construction_is_deterministic() {
        let a = SlimFly::new(11, 4).unwrap();
        let b = SlimFly::new(11, 4).unwrap();
        assert_eq!(a.graph().edges(), b.graph().edges());
        assert_eq!(a.generator_sets(), b.generator_sets());
    }

    #[test]
    fn router_id_layout_is_consistent() {
        let sf = SlimFly::new(5, 1).unwrap();
        assert_eq!(sf.router_id(0, 0, 0), 0);
        assert_eq!(sf.router_id(1, 0, 0), 25);
        assert_eq!(sf.router_id(1, 4, 4), 49);
    }

    #[test]
    fn generator_sets_are_symmetric_and_covering() {
        for q in [7u64, 9, 11, 16] {
            let sf = SlimFly::new(q, 1).unwrap();
            let f = Gf::new(q).unwrap();
            let (x, xp) = sf.generator_sets();
            let mut covered = vec![false; q as usize];
            for &e in x.iter().chain(xp) {
                covered[e as usize] = true;
                assert!(x.contains(&f.neg(e)) || xp.contains(&f.neg(e)));
            }
            assert!((1..q as usize).all(|e| covered[e]), "q={q} cover");
        }
    }
}
