//! Three-level folded-Clos fat tree (Leiserson'85 as deployed in practice).
//!
//! The Table V configuration `n = 3, k = 18` is a 3-stage folded Clos built
//! from radix-`2k` switches: `k²` edge, `k²` aggregation, and `k²` core
//! switches (the core uses only `k` of its ports), `3k² = 972` switches
//! total for `k = 18`. Each of the `k` pods holds `k` edge and `k`
//! aggregation switches in a complete bipartite pattern; aggregation switch
//! `j` of every pod connects to the core block `j·k … j·k + k − 1`. Hosts
//! (`k` per edge switch) attach only at the edge level, making this the one
//! *indirect* topology in the comparison.
//!
//! Nearest-common-ancestor (NCA) routing corresponds exactly to adaptive
//! ECMP over shortest paths in this graph: up-hops have `k` equal-cost
//! choices, down-paths are unique.

use crate::traits::Topology;
use pf_graph::{Csr, GraphBuilder};

/// Switch level within the fat tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Level {
    /// Leaf level — hosts attach here.
    Edge,
    /// Middle (pod) level.
    Aggregation,
    /// Top (spine) level; uses half its radix.
    Core,
}

/// A 3-level folded-Clos fat tree.
pub struct FatTree {
    k: u32,
    graph: Csr,
}

impl FatTree {
    /// Builds the 3-level folded Clos with half-radix `k` (switch radix
    /// `2k`): `k` pods, `3k²` switches, `k³` hosts.
    pub fn new(k: u32) -> FatTree {
        assert!(k >= 2);
        let n = (3 * k * k) as usize;
        let mut b = GraphBuilder::new(n);
        let edge = |pod: u32, i: u32| pod * k + i;
        let agg = |pod: u32, j: u32| k * k + pod * k + j;
        let core = |j: u32, c: u32| 2 * k * k + j * k + c;
        for pod in 0..k {
            for i in 0..k {
                for j in 0..k {
                    b.add_edge(edge(pod, i), agg(pod, j));
                }
            }
            for j in 0..k {
                for c in 0..k {
                    b.add_edge(agg(pod, j), core(j, c));
                }
            }
        }
        FatTree {
            k,
            graph: b.build(),
        }
    }

    /// The Table V instance: `k = 18` → 972 switches, radix 36, 5 832 hosts.
    pub fn table_v() -> FatTree {
        FatTree::new(18)
    }

    /// Half radix `k`.
    pub fn k(&self) -> u32 {
        self.k
    }

    /// Level of switch `r`.
    pub fn level(&self, r: u32) -> Level {
        let kk = self.k * self.k;
        match r / kk {
            0 => Level::Edge,
            1 => Level::Aggregation,
            _ => Level::Core,
        }
    }

    /// Pod of an edge or aggregation switch.
    pub fn pod(&self, r: u32) -> Option<u32> {
        let kk = self.k * self.k;
        match r / kk {
            0 => Some(r / self.k),
            1 => Some((r - kk) / self.k),
            _ => None,
        }
    }
}

impl Topology for FatTree {
    fn name(&self) -> String {
        format!("FT(n=3,k={})", self.k)
    }

    fn graph(&self) -> &Csr {
        &self.graph
    }

    fn endpoints(&self, r: u32) -> usize {
        // Hosts attach only to edge switches, k per switch.
        if self.level(r) == Level::Edge {
            self.k as usize
        } else {
            0
        }
    }

    fn is_direct(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pf_graph::{bfs, DistanceMatrix};

    #[test]
    fn small_fat_tree_structure() {
        let ft = FatTree::new(3);
        assert_eq!(ft.router_count(), 27);
        // Edge/agg degree k (up) + hosts on edge; core degree k.
        for r in 0..ft.router_count() as u32 {
            match ft.level(r) {
                Level::Edge => assert_eq!(ft.graph().degree(r), 3),
                Level::Aggregation => assert_eq!(ft.graph().degree(r), 6),
                Level::Core => assert_eq!(ft.graph().degree(r), 3),
            }
        }
        assert!(ft.graph().is_connected());
    }

    #[test]
    fn edge_to_edge_distances() {
        let ft = FatTree::new(4);
        let dm = DistanceMatrix::build(ft.graph());
        for a in 0..16u32 {
            for b in 0..16u32 {
                if a == b {
                    continue;
                }
                let expect = if ft.pod(a) == ft.pod(b) { 2 } else { 4 };
                assert_eq!(u32::from(dm.get(a, b)), expect, "edge {a}->{b}");
            }
        }
    }

    #[test]
    fn table_v_configuration() {
        let ft = FatTree::table_v();
        assert_eq!(ft.router_count(), 972);
        assert_eq!(ft.total_endpoints(), 18 * 18 * 18);
        assert_eq!(ft.host_routers().len(), 324);
        assert!(!ft.is_direct());
        assert_eq!(bfs::diameter(ft.graph()), Some(4));
    }

    #[test]
    fn up_paths_have_k_way_ecmp() {
        // Every edge switch reaches any other pod's edge switch through k
        // distinct aggregation choices (the NCA diversity the simulator's
        // adaptive routing exploits).
        let ft = FatTree::new(3);
        let g = ft.graph();
        let a = 0u32; // edge switch, pod 0
        let b = 8u32; // edge switch, pod 2
        let dm = DistanceMatrix::build(g);
        let choices = g
            .neighbors(a)
            .iter()
            .filter(|&&w| u32::from(dm.get(w, b)) == u32::from(dm.get(a, b)) - 1)
            .count();
        assert_eq!(choices, 3);
    }
}
