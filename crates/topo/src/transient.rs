//! Transient topologies: a [`Topology`] wrapper whose failed-link set
//! varies over simulated time.
//!
//! [`TransientTopo`] is the time-varying counterpart of
//! [`crate::DegradedTopo`]: instead of one [`FailureSet`] fixed for the
//! run, it carries a [`FaultSchedule`] of half-open `[fail, repair)`
//! windows on links and routers. The *physical* graph is unchanged — as
//! with `DegradedTopo`, dead links keep their ports, buffers, and
//! credits — and the wrapper advertises:
//!
//! * the schedule itself through [`Topology::fault_schedule`], from
//!   which the simulator builds its fault event queue (mask flips at the
//!   scheduled cycles, in-flight-flit policy, staged table
//!   re-convergence);
//! * the cycle-0 state through [`Topology::link_failures`], so route
//!   tables built at construction (`pf_sim::RouteTables::build_for`
//!   style consumers) start from the correct residual graph.
//!
//! Construction validates what the cycle simulator requires: every
//! scheduled link must be an edge, and at *every* fault state the graph
//! restricted to live routers and live links must stay connected —
//! otherwise some router pair would be unroutable for part of the run
//! and packets could never drain. Draw engine-safe link schedules with
//! [`FaultSchedule::sample_connected_links`].

use crate::traits::{RoutingHint, Topology};
use pf_graph::{Csr, FailureSet, FaultEventKind, FaultSchedule};

/// A topology with a schedule of transient (mid-run) faults.
///
/// # Examples
///
/// ```
/// use pf_graph::FaultSchedule;
/// use pf_topo::{PolarFlyTopo, Topology, TransientTopo};
///
/// let pf = PolarFlyTopo::new(7, 4).unwrap();
/// let schedule =
///     FaultSchedule::sample_connected_links(pf.graph(), 0.05, 200, 150, 9);
/// let transient = TransientTopo::new(&pf, schedule);
/// assert_eq!(transient.router_count(), pf.router_count());
/// assert!(transient.fault_schedule().is_some());
/// assert!(transient.name().contains("~transient"));
/// ```
pub struct TransientTopo<'a> {
    inner: &'a dyn Topology,
    schedule: FaultSchedule,
    /// Links already down at cycle 0 (usually empty).
    initial: FailureSet,
}

impl<'a> TransientTopo<'a> {
    /// Wraps `inner` with a fault schedule. Static failures the inner
    /// topology already advertises (a [`crate::DegradedTopo`]) are
    /// merged into the cycle-0 state and stay down for the whole run —
    /// unless the schedule carries a repair window for such a link, in
    /// which case the schedule wins. Panics if a scheduled link is not
    /// an edge of the topology, a scheduled router is out of range, or
    /// any fault state disconnects the live part of the network (live
    /// routers under surviving links) — sample link schedules with
    /// [`FaultSchedule::sample_connected_links`] to avoid the latter.
    pub fn new(inner: &'a dyn Topology, schedule: FaultSchedule) -> TransientTopo<'a> {
        let g = inner.graph();
        let static_failures = inner.link_failures().cloned().unwrap_or_default();
        let events = schedule.resolved_events(g); // validates links/routers
        assert_states_connected(g, &static_failures, &events, &inner.name());
        let mut initial: Vec<(u32, u32)> = schedule.active_at(g, 0).edges().to_vec();
        initial.extend_from_slice(static_failures.edges());
        let initial = FailureSet::from_edges(&initial);
        TransientTopo {
            inner,
            schedule,
            initial,
        }
    }

    /// The wrapped (fault-free) topology.
    pub fn inner(&self) -> &dyn Topology {
        self.inner
    }

    /// The fault schedule driving this topology.
    pub fn schedule(&self) -> &FaultSchedule {
        &self.schedule
    }
}

impl Topology for TransientTopo<'_> {
    fn name(&self) -> String {
        format!("{}~transient×{}", self.inner.name(), self.schedule.len())
    }

    /// The *physical* graph: links scheduled to fail keep their ports and
    /// buffers throughout (masked at routing while down).
    fn graph(&self) -> &Csr {
        self.inner.graph()
    }

    fn endpoints(&self, r: u32) -> usize {
        self.inner.endpoints(r)
    }

    fn is_direct(&self) -> bool {
        self.inner.is_direct()
    }

    /// Forwarded unchanged: the structural hint survives transient
    /// faults; the simulator validates algebraic hops against its live
    /// per-port masks.
    fn routing_hint(&self) -> RoutingHint<'_> {
        self.inner.routing_hint()
    }

    /// The schedule's cycle-0 state (`None` when the run starts healthy).
    fn link_failures(&self) -> Option<&FailureSet> {
        if self.initial.is_empty() {
            None
        } else {
            Some(&self.initial)
        }
    }

    fn fault_schedule(&self) -> Option<&FaultSchedule> {
        Some(&self.schedule)
    }
}

/// Replays the resolved event stream on top of the inner topology's
/// static failures and asserts that every fault state keeps the
/// live-router subgraph (under live links) connected.
fn assert_states_connected(
    g: &Csr,
    static_failures: &FailureSet,
    events: &[pf_graph::FaultEvent],
    name: &str,
) {
    use std::collections::BTreeSet;
    let mut down_links: BTreeSet<(u32, u32)> = static_failures.edges().iter().copied().collect();
    let mut down_routers: BTreeSet<u32> = BTreeSet::new();
    assert!(
        live_subgraph_connected(g, &down_links, &down_routers),
        "{name}: static failures alone disconnect the network"
    );
    let mut i = 0;
    while i < events.len() {
        let cycle = events[i].cycle;
        while i < events.len() && events[i].cycle == cycle {
            match events[i].kind {
                FaultEventKind::LinkDown(u, v) => {
                    down_links.insert((u, v));
                }
                FaultEventKind::LinkUp(u, v) => {
                    down_links.remove(&(u, v));
                }
                FaultEventKind::RouterDown(r) => {
                    down_routers.insert(r);
                }
                FaultEventKind::RouterUp(r) => {
                    down_routers.remove(&r);
                }
            }
            i += 1;
        }
        assert!(
            live_subgraph_connected(g, &down_links, &down_routers),
            "{name}: fault state at cycle {cycle} disconnects the live \
             network ({} links, {} routers down); sample with \
             FaultSchedule::sample_connected_links",
            down_links.len(),
            down_routers.len()
        );
    }
}

/// Union-find connectivity of `g` restricted to live routers and links.
fn live_subgraph_connected(
    g: &Csr,
    down_links: &std::collections::BTreeSet<(u32, u32)>,
    down_routers: &std::collections::BTreeSet<u32>,
) -> bool {
    let n = g.vertex_count();
    let mut parent: Vec<u32> = (0..n as u32).collect();
    fn find(parent: &mut [u32], mut v: u32) -> u32 {
        while parent[v as usize] != v {
            parent[v as usize] = parent[parent[v as usize] as usize];
            v = parent[v as usize];
        }
        v
    }
    for &(u, v) in g.edges() {
        if down_links.contains(&(u, v)) || down_routers.contains(&u) || down_routers.contains(&v) {
            continue;
        }
        let (ru, rv) = (find(&mut parent, u), find(&mut parent, v));
        if ru != rv {
            parent[ru as usize] = rv;
        }
    }
    let mut live_root = None;
    for v in 0..n as u32 {
        if down_routers.contains(&v) {
            continue;
        }
        let r = find(&mut parent, v);
        match live_root {
            None => live_root = Some(r),
            Some(lr) if lr != r => return false,
            _ => {}
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::PolarFlyTopo;

    #[test]
    fn transient_preserves_structure_and_advertises_schedule() {
        let pf = PolarFlyTopo::new(7, 4).unwrap();
        let s = FaultSchedule::sample_connected_links(pf.graph(), 0.08, 300, 200, 5);
        assert!(!s.is_empty());
        let t = TransientTopo::new(&pf, s.clone());
        assert_eq!(t.router_count(), 57);
        assert_eq!(t.total_endpoints(), 57 * 4);
        assert_eq!(t.graph().edge_count(), pf.graph().edge_count());
        assert!(matches!(t.routing_hint(), RoutingHint::PolarFly(_)));
        assert_eq!(t.fault_schedule().unwrap(), &s);
        assert!(t.name().contains("PF(q=7,p=4)~transient"));
        // Healthy topologies advertise no schedule.
        assert!(pf.fault_schedule().is_none());
    }

    #[test]
    fn initial_state_matches_cycle_zero() {
        let pf = PolarFlyTopo::new(5, 2).unwrap();
        let (u, v) = pf.graph().edges()[3];
        // One link already down at cycle 0, another failing later.
        let (a, b) = pf.graph().edges()[10];
        let s = FaultSchedule::new()
            .link_fault(u, v, 0, 500)
            .link_fault(a, b, 200, 400);
        let t = TransientTopo::new(&pf, s);
        let init = t.link_failures().expect("link down at cycle 0");
        assert_eq!(init.len(), 1);
        assert!(init.contains(u, v));
        assert!(!init.contains(a, b));
        // A schedule that starts healthy advertises no initial failures.
        let s2 = FaultSchedule::new().link_fault(u, v, 100, 200);
        let t2 = TransientTopo::new(&pf, s2);
        assert!(t2.link_failures().is_none());
    }

    #[test]
    #[should_panic(expected = "disconnects the live network")]
    fn rejects_schedules_that_disconnect() {
        let pf = PolarFlyTopo::new(5, 2).unwrap();
        // Cut vertex 0 off entirely via link faults (no router-down, so
        // vertex 0 stays "live" but unreachable).
        let mut s = FaultSchedule::new();
        for &w in pf.graph().neighbors(0) {
            s = s.link_fault(0, w, 50, 150);
        }
        TransientTopo::new(&pf, s);
    }

    #[test]
    fn wrapping_a_degraded_topo_keeps_its_static_failures() {
        use crate::degraded::DegradedTopo;
        let pf = PolarFlyTopo::new(7, 4).unwrap();
        let static_failures = FailureSet::sample_connected(pf.graph(), 0.05, 8);
        assert!(!static_failures.is_empty());
        let degraded = DegradedTopo::new(&pf, static_failures.clone());
        // A blip on a link that is NOT statically failed.
        let (u, v) = *pf
            .graph()
            .edges()
            .iter()
            .find(|&&(u, v)| !static_failures.contains(u, v))
            .unwrap();
        let t = TransientTopo::new(&degraded, FaultSchedule::new().link_fault(u, v, 0, 100));
        let init = t.link_failures().unwrap();
        // Cycle-0 state = static failures ∪ scheduled cycle-0 faults.
        assert_eq!(init.len(), static_failures.len() + 1);
        assert!(init.contains(u, v));
        for &(a, b) in static_failures.edges() {
            assert!(init.contains(a, b), "static failure {a}-{b} dropped");
        }
    }

    #[test]
    fn router_blip_is_accepted_when_survivors_stay_connected() {
        // ER_q minus one vertex stays connected: a router fault window is
        // a valid transient schedule even though it isolates the router's
        // own endpoint for the duration.
        let pf = PolarFlyTopo::new(5, 2).unwrap();
        let s = FaultSchedule::new().router_fault(3, 100, 300);
        let t = TransientTopo::new(&pf, s);
        assert!(t.link_failures().is_none());
        assert_eq!(t.schedule().routers_down_at(150), vec![3]);
    }
}
