//! The two known diameter-2 Moore graphs: Petersen (degree 3, 10 vertices)
//! and Hoffman–Singleton (degree 7, 50 vertices). They are the only
//! diameter-2 topologies that meet the Moore bound exactly (degree 57 is
//! open), plotted as reference points in Fig. 2.

use pf_graph::{Csr, GraphBuilder};

/// The Petersen graph: outer 5-cycle, inner pentagram, spokes.
pub fn petersen() -> Csr {
    let mut b = GraphBuilder::new(10);
    for i in 0..5u32 {
        b.add_edge(i, (i + 1) % 5); // outer cycle
        b.add_edge(5 + i, 5 + (i + 2) % 5); // inner pentagram
        b.add_edge(i, 5 + i); // spokes
    }
    b.build()
}

/// The Hoffman–Singleton graph via the classical pentagon/pentagram
/// construction: pentagons `P_0..P_4` (vertices `25·0 + 5h + j`) and
/// pentagrams `Q_0..Q_4` (vertices `25 + 5i + j`); vertex `j` of `P_h`
/// joins vertex `(h·i + j) mod 5` of `Q_i`.
pub fn hoffman_singleton() -> Csr {
    let p = |h: u32, j: u32| 5 * h + j % 5;
    let q = |i: u32, j: u32| 25 + 5 * i + j % 5;
    let mut b = GraphBuilder::new(50);
    for h in 0..5u32 {
        for j in 0..5u32 {
            b.add_edge(p(h, j), p(h, j + 1)); // pentagon: step 1
            b.add_edge(q(h, j), q(h, j + 2)); // pentagram: step 2
        }
    }
    for h in 0..5u32 {
        for i in 0..5u32 {
            for j in 0..5u32 {
                b.add_edge(p(h, j), q(i, h * i + j));
            }
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pf_graph::bfs;

    fn is_moore_graph(g: &Csr, k: usize) -> bool {
        // Degree-k diameter-2 Moore graph: k-regular, 1+k² vertices, girth
        // 5 (adjacent pairs share 0 neighbors, non-adjacent exactly 1).
        if !g.is_regular(k) || g.vertex_count() != 1 + k * k {
            return false;
        }
        let n = g.vertex_count() as u32;
        for u in 0..n {
            for v in (u + 1)..n {
                let common = g
                    .neighbors(u)
                    .iter()
                    .filter(|&&w| g.neighbors(v).binary_search(&w).is_ok())
                    .count();
                let expect = if g.has_edge(u, v) { 0 } else { 1 };
                if common != expect {
                    return false;
                }
            }
        }
        true
    }

    #[test]
    fn petersen_is_the_degree_3_moore_graph() {
        let g = petersen();
        assert!(is_moore_graph(&g, 3));
        assert_eq!(bfs::diameter(&g), Some(2));
    }

    #[test]
    fn hoffman_singleton_is_the_degree_7_moore_graph() {
        let g = hoffman_singleton();
        assert!(is_moore_graph(&g, 7));
        assert_eq!(bfs::diameter(&g), Some(2));
    }
}
