//! HyperX (Ahn et al., SC'09) — Hamming graphs generalizing the Flattened
//! Butterfly. The diameter-2 members are 2-D: `K_a □ K_b`, i.e. an `a × b`
//! grid where every row and every column is a clique. Degree is
//! `a + b − 2`; the balanced square `a = b` maximizes routers per radix at
//! `≈ ((k+2)/2)²` — roughly 25% of the Moore bound, the low curve in Fig. 2.

use crate::traits::Topology;
use pf_graph::{Csr, GraphBuilder};

/// A 2-D HyperX (Hamming graph `K_a □ K_b`).
pub struct HyperX {
    a: u32,
    b: u32,
    p: usize,
    graph: Csr,
}

impl HyperX {
    /// Builds `K_a □ K_b` with `p` endpoints per router.
    pub fn new(a: u32, b: u32, p: usize) -> HyperX {
        assert!(a >= 2 && b >= 2);
        let id = |i: u32, j: u32| i * b + j;
        let mut g = GraphBuilder::new((a * b) as usize);
        for i in 0..a {
            for j in 0..b {
                for j2 in (j + 1)..b {
                    g.add_edge(id(i, j), id(i, j2)); // row clique
                }
                for i2 in (i + 1)..a {
                    g.add_edge(id(i, j), id(i2, j)); // column clique
                }
            }
        }
        HyperX {
            a,
            b,
            p,
            graph: g.build(),
        }
    }

    /// Balanced square HyperX of the largest size with degree ≤ `max_degree`.
    pub fn square_for_degree(max_degree: u32, p: usize) -> HyperX {
        let a = (max_degree + 2) / 2;
        HyperX::new(a, a, p)
    }

    /// Network degree `a + b − 2`.
    pub fn degree(&self) -> u32 {
        self.a + self.b - 2
    }
}

impl Topology for HyperX {
    fn name(&self) -> String {
        format!("HX({}x{},p={})", self.a, self.b, self.p)
    }

    fn graph(&self) -> &Csr {
        &self.graph
    }

    fn endpoints(&self, _r: u32) -> usize {
        self.p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pf_graph::bfs;

    #[test]
    fn hamming_structure() {
        let hx = HyperX::new(4, 5, 1);
        assert_eq!(hx.router_count(), 20);
        assert!(hx.graph().is_regular(7)); // 4+5-2
        assert_eq!(bfs::diameter(hx.graph()), Some(2));
    }

    #[test]
    fn square_maximizes_size() {
        let hx = HyperX::square_for_degree(16, 1);
        assert_eq!(hx.degree(), 16);
        assert_eq!(hx.router_count(), 81); // ((16+2)/2)²
    }

    #[test]
    fn rectangular_hyperx_degrees() {
        let hx = HyperX::new(3, 7, 2);
        assert_eq!(hx.degree(), 8);
        assert_eq!(hx.router_count(), 21);
        assert_eq!(hx.total_endpoints(), 42);
        assert!(hx.graph().is_regular(8));
    }

    #[test]
    fn degenerate_2x2_is_cycle() {
        let hx = HyperX::new(2, 2, 1);
        assert!(hx.graph().is_regular(2));
        assert_eq!(bfs::diameter(hx.graph()), Some(2));
    }
}
