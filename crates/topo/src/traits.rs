//! The [`Topology`] abstraction consumed by the simulator and structural
//! analyses, plus the qualitative feasibility matrix of Table I.

use pf_graph::{Csr, FailureSet, FaultSchedule};
use polarfly::PolarFly;

/// What a topology can tell routing layers about its structure, beyond
/// the bare graph. Simulators use this to swap table lookups for
/// closed-form next-hop computation when the topology supports one.
pub enum RoutingHint<'a> {
    /// No structure to exploit: route from generic shortest-path tables.
    Generic,
    /// The router graph is `ER_q`: minimal next hops are computable in
    /// O(1) via the cross product (`polarfly::routing::next_hop_minimal`).
    PolarFly(&'a PolarFly),
}

/// A network topology as the simulator sees it: a router graph plus the
/// number of compute endpoints attached to each router (zero for pure
/// switches, e.g. non-edge fat-tree levels).
pub trait Topology: Send + Sync {
    /// Human-readable instance name (e.g. `"PF(q=31,p=16)"`).
    fn name(&self) -> String;

    /// The router-to-router link graph.
    fn graph(&self) -> &Csr;

    /// Endpoints (injection/ejection channels) attached to router `r`.
    fn endpoints(&self, r: u32) -> usize;

    /// Number of routers.
    fn router_count(&self) -> usize {
        self.graph().vertex_count()
    }

    /// Routers that have at least one endpoint ("hosts" for traffic
    /// patterns), ascending.
    fn host_routers(&self) -> Vec<u32> {
        (0..self.router_count() as u32)
            .filter(|&r| self.endpoints(r) > 0)
            .collect()
    }

    /// Total endpoint count.
    fn total_endpoints(&self) -> usize {
        (0..self.router_count() as u32)
            .map(|r| self.endpoints(r))
            .sum()
    }

    /// Whether the topology is direct (every router is also a compute
    /// node). Direct networks need only one co-packaged chip type (§III).
    fn is_direct(&self) -> bool {
        true
    }

    /// Structural routing hint (default: nothing to exploit).
    ///
    /// # Contract
    ///
    /// The hint describes the *physical* graph returned by
    /// [`Topology::graph`] and must stay consistent with it: a
    /// [`RoutingHint::PolarFly`] answer promises that
    /// `polarfly::routing::next_hop_minimal` computes minimal next hops
    /// on exactly that graph. Wrappers that mask links
    /// ([`crate::DegradedTopo`], [`crate::TransientTopo`]) forward the
    /// inner hint unchanged — the algebraic structure survives failures,
    /// and consumers layer their own failure masks on top (the
    /// simulator's `MinHop::AlgebraicMasked` validates each algebraic hop
    /// against its per-port liveness mask before using it).
    ///
    /// ```
    /// use pf_graph::FailureSet;
    /// use pf_topo::{DegradedTopo, PolarFlyTopo, RoutingHint, Topology};
    ///
    /// let pf = PolarFlyTopo::new(7, 4).unwrap();
    /// assert!(matches!(pf.routing_hint(), RoutingHint::PolarFly(_)));
    ///
    /// // Masking links must not erase the structural hint.
    /// let failures = FailureSet::sample_connected(pf.graph(), 0.05, 1);
    /// let degraded = DegradedTopo::new(&pf, failures);
    /// assert!(matches!(degraded.routing_hint(), RoutingHint::PolarFly(_)));
    /// ```
    fn routing_hint(&self) -> RoutingHint<'_> {
        RoutingHint::Generic
    }

    /// Failed links to mask out of routing (default: none — a healthy
    /// network). [`crate::DegradedTopo`] overrides this; the simulator
    /// consumes it to build residual route tables and per-port link masks.
    ///
    /// # Contract
    ///
    /// Every returned edge must be an edge of [`Topology::graph`] (the
    /// graph itself is *not* shrunk — failed links keep their ports and
    /// buffers), and `Some(set)` with an empty set must behave exactly
    /// like `None`. For a transient topology this is the state at cycle
    /// 0; the schedule from [`Topology::fault_schedule`] evolves it.
    ///
    /// ```
    /// use pf_graph::FailureSet;
    /// use pf_topo::{DegradedTopo, PolarFlyTopo, Topology};
    ///
    /// let pf = PolarFlyTopo::new(7, 4).unwrap();
    /// assert!(pf.link_failures().is_none()); // healthy by default
    ///
    /// let failures = FailureSet::sample_connected(pf.graph(), 0.05, 42);
    /// let degraded = DegradedTopo::new(&pf, failures.clone());
    /// let advertised = degraded.link_failures().unwrap();
    /// assert_eq!(advertised, &failures);
    /// // The physical graph is unchanged; only routing masks the links.
    /// assert_eq!(degraded.graph().edge_count(), pf.graph().edge_count());
    /// for &(u, v) in advertised.edges() {
    ///     assert!(degraded.graph().has_edge(u, v));
    /// }
    /// ```
    fn link_failures(&self) -> Option<&FailureSet> {
        None
    }

    /// Transient-fault schedule (default: none — the fault state, if
    /// any, is fixed for the whole run). [`crate::TransientTopo`]
    /// overrides this; the simulator builds its fault event queue from
    /// the resolved schedule and flips its per-port link masks mid-run.
    ///
    /// # Contract
    ///
    /// When `Some`, [`Topology::link_failures`] must describe the
    /// schedule's state at cycle 0, and every scheduled link must be an
    /// edge of [`Topology::graph`].
    ///
    /// ```
    /// use pf_graph::FaultSchedule;
    /// use pf_topo::{PolarFlyTopo, Topology, TransientTopo};
    ///
    /// let pf = PolarFlyTopo::new(7, 4).unwrap();
    /// assert!(pf.fault_schedule().is_none());
    ///
    /// let (u, v) = pf.graph().edges()[0];
    /// let schedule = FaultSchedule::new().link_fault(u, v, 100, 400);
    /// let transient = TransientTopo::new(&pf, schedule);
    /// assert!(transient.fault_schedule().is_some());
    /// // Healthy at cycle 0: the blip starts at cycle 100.
    /// assert!(transient.link_failures().is_none());
    /// ```
    fn fault_schedule(&self) -> Option<&FaultSchedule> {
        None
    }
}

/// PolarFly wrapped as a simulator [`Topology`] with `p` endpoints per
/// router (the paper's co-packaged setting; Table V uses `p = 16` at
/// `q = 31` for the 1:2 endpoint:radix balance).
pub struct PolarFlyTopo {
    pf: PolarFly,
    p: usize,
}

impl PolarFlyTopo {
    /// Builds `ER_q` with `p` endpoints on every router.
    pub fn new(q: u64, p: usize) -> Result<Self, pf_galois::GfError> {
        Ok(PolarFlyTopo {
            pf: PolarFly::new(q)?,
            p,
        })
    }

    /// Balanced variant: `p = (q+1)/2` (endpoint:radix = 1:2), as used in
    /// the Fig. 10 size sweep.
    pub fn balanced(q: u64) -> Result<Self, pf_galois::GfError> {
        let p = q.div_ceil(2) as usize;
        PolarFlyTopo::new(q, p)
    }

    /// The underlying PolarFly instance.
    pub fn inner(&self) -> &PolarFly {
        &self.pf
    }
}

impl Topology for PolarFlyTopo {
    fn name(&self) -> String {
        format!("PF(q={},p={})", self.pf.q(), self.p)
    }

    fn graph(&self) -> &Csr {
        self.pf.graph()
    }

    fn endpoints(&self, _r: u32) -> usize {
        self.p
    }

    fn routing_hint(&self) -> RoutingHint<'_> {
        RoutingHint::PolarFly(&self.pf)
    }
}

/// A pre-built graph exposed as a uniform-endpoint [`Topology`] — used for
/// expanded PolarFly instances (Fig. 11) and ad-hoc graphs.
pub struct GraphTopo {
    name: String,
    graph: Csr,
    p: usize,
}

impl GraphTopo {
    /// Wraps an arbitrary router graph with `p` endpoints per router.
    pub fn new(name: impl Into<String>, graph: Csr, p: usize) -> Self {
        GraphTopo {
            name: name.into(),
            graph,
            p,
        }
    }
}

impl Topology for GraphTopo {
    fn name(&self) -> String {
        self.name.clone()
    }

    fn graph(&self) -> &Csr {
        &self.graph
    }

    fn endpoints(&self, _r: u32) -> usize {
        self.p
    }
}

/// Qualitative support level in the Table I feasibility matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Support {
    /// The criterion is fully satisfied.
    Full,
    /// The criterion is partially satisfied.
    Partial,
    /// The criterion is not satisfied.
    None,
}

/// One Table I row.
#[derive(Debug, Clone)]
pub struct FeasibilityRow {
    /// Topology name.
    pub topology: &'static str,
    /// Direct network (no dedicated switch chips).
    pub direct: Support,
    /// Decomposes into rack/pod-sized modules.
    pub modular: Support,
    /// Grows incrementally without rewiring.
    pub expandable: Support,
    /// Many feasible radix configurations.
    pub flexible: Support,
    /// Diameter-2 connectivity.
    pub diameter2: Support,
}

/// The Table I feasibility matrix, as assessed in §III of the paper.
pub fn feasibility_table() -> Vec<FeasibilityRow> {
    use Support::{Full, None as No, Partial};
    let row = |topology, direct, modular, expandable, flexible, diameter2| FeasibilityRow {
        topology,
        direct,
        modular,
        expandable,
        flexible,
        diameter2,
    };
    vec![
        row("Fat tree", No, Full, Full, Full, No),
        row("Dragonfly", Partial, Full, Full, Partial, No),
        row("HyperX", Partial, Full, Full, Partial, Full),
        row("OFT", No, Partial, No, Full, Full),
        row("MLFM", No, Full, No, Partial, Full),
        row("Slim Fly", Full, Full, Partial, Partial, Full),
        row("PolarFly", Full, Full, Partial, Full, Full),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn polarfly_topo_basics() {
        let t = PolarFlyTopo::new(7, 4).unwrap();
        assert_eq!(t.router_count(), 57);
        assert_eq!(t.total_endpoints(), 57 * 4);
        assert_eq!(t.host_routers().len(), 57);
        assert!(t.is_direct());
        assert_eq!(t.name(), "PF(q=7,p=4)");
    }

    #[test]
    fn balanced_ratio() {
        let t = PolarFlyTopo::balanced(31).unwrap();
        assert_eq!(t.endpoints(0), 16); // Table V: q=31, p=16
    }

    #[test]
    fn table_i_polarfly_satisfies_most_criteria() {
        let table = feasibility_table();
        let pf = table.iter().find(|r| r.topology == "PolarFly").unwrap();
        assert_eq!(pf.direct, Support::Full);
        assert_eq!(pf.flexible, Support::Full);
        assert_eq!(pf.diameter2, Support::Full);
        // Only PolarFly has ≥ partial support on every criterion with full
        // support on at least four.
        for r in &table {
            let full = [r.direct, r.modular, r.expandable, r.flexible, r.diameter2]
                .iter()
                .filter(|&&s| s == Support::Full)
                .count();
            if r.topology != "PolarFly" {
                assert!(full <= 4);
            } else {
                assert!(full >= 4);
            }
        }
    }
}
