//! Two-level Orthogonal Fat Tree (OFT) — Kathareios et al., SC'15
//! (Table I candidate).
//!
//! The 2-level OFT is the indirect cousin of PolarFly: leaf switches are
//! the *points* and spine switches the *lines* of `PG(2, q)`, wired by
//! incidence — i.e. the bipartite graph `B(q)` of paper §IV-E1, *without*
//! the polarity quotient. Every pair of leaves shares exactly one spine,
//! so host-to-host traffic crosses exactly two switch hops; with `q + 1`
//! hosts per leaf the leaf radix is `2(q + 1)` and the network supports
//! `(q² + q + 1)(q + 1)` hosts at full bisection.
//!
//! Relative to PolarFly at the same radix the OFT needs **twice** the
//! switches (points *and* lines) and a second chip type (spines carry no
//! hosts) — the cost §III charges indirect topologies with.

use crate::traits::Topology;
use pf_galois::{Gf, GfError, ProjectivePlane};
use pf_graph::{Csr, GraphBuilder};

/// A two-level OFT instance built over `PG(2, q)`.
pub struct Oft {
    q: u32,
    graph: Csr,
    side: usize,
}

impl Oft {
    /// Builds the OFT for prime power `q`: `q² + q + 1` leaves (hosts
    /// attached) and as many spines.
    pub fn new(q: u64) -> Result<Self, GfError> {
        let plane = ProjectivePlane::new(Gf::new(q)?);
        let n = plane.point_count();
        let mut b = GraphBuilder::new(2 * n);
        for line_idx in 0..n {
            let line = plane.point(line_idx);
            for point_idx in plane.points_on_line(&line) {
                b.add_edge(point_idx as u32, (n + line_idx) as u32);
            }
        }
        Ok(Oft {
            q: plane.field().order(),
            graph: b.build(),
            side: n,
        })
    }

    /// The construction parameter `q`.
    pub fn q(&self) -> u32 {
        self.q
    }

    /// Leaf (or spine) count, `q² + q + 1`.
    pub fn leaves(&self) -> usize {
        self.side
    }

    /// Leaf switch radix including host ports, `2(q + 1)`.
    pub fn leaf_radix(&self) -> u32 {
        2 * (self.q + 1)
    }

    /// Whether `r` is a leaf (hosts attach only to leaves).
    pub fn is_leaf(&self, r: u32) -> bool {
        (r as usize) < self.side
    }
}

impl Topology for Oft {
    fn name(&self) -> String {
        format!("OFT(q={})", self.q)
    }

    fn graph(&self) -> &Csr {
        &self.graph
    }

    fn endpoints(&self, r: u32) -> usize {
        if self.is_leaf(r) {
            (self.q + 1) as usize
        } else {
            0
        }
    }

    fn is_direct(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pf_graph::{bfs, DistanceMatrix};

    #[test]
    fn structure_counts() {
        for q in [3u64, 4, 5, 7] {
            let oft = Oft::new(q).unwrap();
            let n = (q * q + q + 1) as usize;
            assert_eq!(oft.router_count(), 2 * n);
            assert_eq!(oft.host_routers().len(), n);
            assert_eq!(oft.total_endpoints() as u64, (q + 1) * n as u64);
            assert!(oft.graph().is_regular((q + 1) as usize));
            assert!(!oft.is_direct());
        }
    }

    #[test]
    fn leaf_pairs_share_exactly_one_spine() {
        // The "orthogonality" that gives host-level diameter 2: any two
        // leaves have exactly one common spine (two points span one line).
        let oft = Oft::new(5).unwrap();
        let g = oft.graph();
        let n = oft.leaves() as u32;
        for a in 0..n {
            for b in (a + 1)..n {
                let common = g
                    .neighbors(a)
                    .iter()
                    .filter(|&&s| g.neighbors(b).binary_search(&s).is_ok())
                    .count();
                assert_eq!(common, 1, "leaves {a},{b}");
            }
        }
    }

    #[test]
    fn leaf_to_leaf_distance_is_two() {
        let oft = Oft::new(4).unwrap();
        let dm = DistanceMatrix::build(oft.graph());
        let n = oft.leaves() as u32;
        for a in 0..n {
            for b in 0..n {
                if a != b {
                    assert_eq!(dm.get(a, b), 2);
                }
            }
        }
        // Whole switch graph (incl. spine-to-spine) has diameter 3.
        assert_eq!(bfs::diameter(oft.graph()), Some(3));
    }

    #[test]
    fn twice_the_switches_of_polarfly() {
        // §III's cost argument: OFT needs 2x the switches of the polarity
        // quotient at the same q, and a second (host-free) chip type.
        let oft = Oft::new(7).unwrap();
        let pf = polarfly::PolarFly::new(7).unwrap();
        assert_eq!(oft.router_count(), 2 * pf.router_count());
        let spines = (0..oft.router_count() as u32)
            .filter(|&r| oft.endpoints(r) == 0)
            .count();
        assert_eq!(spines, pf.router_count());
    }
}
