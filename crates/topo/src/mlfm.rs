//! Multi-Layer Full Mesh (MLFM) — Kathareios et al., SC'15 (Table I
//! candidate).
//!
//! An MLFM replicates a full mesh of `m` switches across `l` layers; every
//! *host group* owns one switch position and attaches one NIC to its
//! switch in each layer. Host-to-host traffic goes up into any layer,
//! crosses at most one mesh link, and comes back down — host-level
//! diameter 2 — and the layers multiply bandwidth without increasing
//! switch radix.
//!
//! The layers are mutually disconnected at the switch level (they are
//! bridged only through multi-homed hosts), which is exactly why Table I
//! scores MLFM "not expandable" and only partially flexible, and why it
//! cannot be driven by the single-NIC flit simulator here. The module
//! models the structure: per-layer graphs, the host-level logical
//! multigraph, and the scale/cost accounting used in feasibility
//! comparisons.

use pf_graph::{Csr, GraphBuilder};

/// A Multi-Layer Full Mesh configuration.
pub struct Mlfm {
    /// Switches per layer (mesh size).
    pub m: u32,
    /// Number of layers.
    pub layers: u32,
    /// Host-facing ports per switch.
    pub hosts_per_switch: u32,
}

impl Mlfm {
    /// An MLFM with `m` switches per layer, `l` layers, and `h` host ports
    /// per switch. Switch radix is `(m − 1) + h`.
    pub fn new(m: u32, layers: u32, hosts_per_switch: u32) -> Mlfm {
        assert!(m >= 2 && layers >= 1 && hosts_per_switch >= 1);
        Mlfm {
            m,
            layers,
            hosts_per_switch,
        }
    }

    /// Balanced MLFM for a given switch radix `k`: `m = k/2 + 1` switches
    /// of which `k/2` ports face hosts (the SC'15 sizing).
    pub fn balanced(k: u32) -> Mlfm {
        assert!(k >= 4 && k.is_multiple_of(2));
        Mlfm::new(k / 2 + 1, 2, k / 2)
    }

    /// Switch radix `(m − 1) + hosts_per_switch`.
    pub fn radix(&self) -> u32 {
        self.m - 1 + self.hosts_per_switch
    }

    /// Total switches `m · layers`.
    pub fn switch_count(&self) -> usize {
        (self.m * self.layers) as usize
    }

    /// Host groups (`m`), each with `layers` NICs.
    pub fn host_groups(&self) -> u32 {
        self.m
    }

    /// Total hosts: each switch serves `hosts_per_switch` NICs, but a host
    /// consumes one NIC per layer, so hosts = m·hosts_per_switch.
    pub fn host_count(&self) -> usize {
        (self.m * self.hosts_per_switch) as usize
    }

    /// One layer's switch graph: the complete graph `K_m`.
    pub fn layer_graph(&self) -> Csr {
        let mut b = GraphBuilder::new(self.m as usize);
        for u in 0..self.m {
            for v in (u + 1)..self.m {
                b.add_edge(u, v);
            }
        }
        b.build()
    }

    /// The host-group-level logical graph: `K_m` where each edge carries
    /// `layers` parallel links. Returned as `(simple graph, multiplicity)`.
    pub fn logical_graph(&self) -> (Csr, u32) {
        (self.layer_graph(), self.layers)
    }

    /// Host-level diameter: 2 switch hops (up, at most one mesh hop, down)
    /// whenever both hosts exist; 0 mesh hops for same-group pairs.
    pub fn host_diameter(&self) -> u32 {
        2
    }

    /// Bisection links of the logical graph: `layers · ⌈m/2⌉·⌊m/2⌋` mesh
    /// links cross any balanced cut of host groups.
    pub fn bisection_links(&self) -> u64 {
        u64::from(self.layers) * u64::from(self.m / 2) * u64::from(self.m.div_ceil(2))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pf_graph::bfs;

    #[test]
    fn balanced_sizing() {
        let mlfm = Mlfm::balanced(32);
        assert_eq!(mlfm.m, 17);
        assert_eq!(mlfm.hosts_per_switch, 16);
        assert_eq!(mlfm.radix(), 32);
        assert_eq!(mlfm.switch_count(), 34);
        assert_eq!(mlfm.host_count(), 17 * 16);
    }

    #[test]
    fn layer_is_a_clique() {
        let mlfm = Mlfm::new(6, 3, 4);
        let g = mlfm.layer_graph();
        assert!(g.is_regular(5));
        assert_eq!(bfs::diameter(&g), Some(1));
        assert_eq!(mlfm.host_diameter(), 2);
    }

    #[test]
    fn logical_multigraph_multiplicity() {
        let mlfm = Mlfm::new(5, 4, 2);
        let (g, mult) = mlfm.logical_graph();
        assert_eq!(mult, 4);
        assert_eq!(g.edge_count(), 10); // C(5,2)
        assert_eq!(mlfm.bisection_links(), 4 * 2 * 3);
    }

    #[test]
    fn scale_lags_polarfly_badly() {
        // At radix 32: MLFM hosts 272 vs PolarFly's 993 routers × 16
        // endpoints — the Moore-bound gap §III leans on.
        let mlfm = Mlfm::balanced(32);
        let pf = polarfly::PolarFly::new(31).unwrap();
        assert!(mlfm.host_count() < pf.router_count());
    }
}
