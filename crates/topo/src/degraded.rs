//! Degraded topologies: a [`Topology`] wrapper that masks failed links.
//!
//! [`DegradedTopo`] models a live network with dead links: the *physical*
//! router graph (ports, buffers, credits) is unchanged — [`Topology::graph`]
//! still returns the full graph — but the wrapper advertises a
//! [`FailureSet`] through [`Topology::link_failures`], which the simulator
//! threads through every routing layer:
//!
//! * route tables are built on the residual graph
//!   (`pf_sim::RouteTables::build_for`), so table next hops and UGAL
//!   distance terms follow surviving paths only;
//! * the engine derives per-port link masks, so adaptive algorithms
//!   (MinAdaptive, UGAL-L/PF) skip dead outputs while still reading live
//!   queue state on the survivors;
//! * PolarFly's algebraic minimal fast path — preserved verbatim via the
//!   forwarded [`Topology::routing_hint`] — validates its O(1) computed
//!   hop against the mask and falls back to table routing when any hop of
//!   the algebraic path is down.
//!
//! The wrapper requires the residual graph to stay connected (asserted at
//! construction): a simulator run against a partitioned network would
//! generate packets that can never be delivered. Use
//! [`pf_graph::FailureSet::sample_connected`] to draw safe failure sets at
//! any ratio.

use crate::traits::{RoutingHint, Topology};
use pf_graph::{Csr, FailureSet};

/// A topology with a set of failed links masked out of routing.
///
/// # Examples
///
/// ```
/// use pf_graph::FailureSet;
/// use pf_topo::{DegradedTopo, PolarFlyTopo, Topology};
///
/// let pf = PolarFlyTopo::new(7, 4).unwrap();
/// let failures = FailureSet::sample_connected(pf.graph(), 0.05, 42);
/// let degraded = DegradedTopo::new(&pf, failures);
/// assert_eq!(degraded.router_count(), pf.router_count());
/// assert!(degraded.residual().is_connected());
/// assert!(degraded.residual().edge_count() < pf.graph().edge_count());
/// ```
pub struct DegradedTopo<'a> {
    inner: &'a dyn Topology,
    failures: FailureSet,
    residual: Csr,
}

impl<'a> DegradedTopo<'a> {
    /// Wraps `inner` with the given failed links. Panics if a failed link
    /// is not an edge of the topology, or if the residual graph is
    /// disconnected (some router pairs would be unroutable — sample with
    /// [`FailureSet::sample_connected`] to avoid this).
    pub fn new(inner: &'a dyn Topology, failures: FailureSet) -> DegradedTopo<'a> {
        let g = inner.graph();
        for &(u, v) in failures.edges() {
            assert!(
                g.has_edge(u, v),
                "failed link {u}-{v} is not an edge of {}",
                inner.name()
            );
        }
        let residual = failures.residual(g);
        assert!(
            residual.is_connected(),
            "residual graph of {} is disconnected at failure ratio {:.3}; \
             sample with FailureSet::sample_connected",
            inner.name(),
            failures.ratio(g)
        );
        DegradedTopo {
            inner,
            failures,
            residual,
        }
    }

    /// The wrapped (healthy) topology.
    pub fn inner(&self) -> &dyn Topology {
        self.inner
    }

    /// The surviving-link graph (same vertex ids as the full graph).
    pub fn residual(&self) -> &Csr {
        &self.residual
    }

    /// Fraction of links failed.
    pub fn failure_ratio(&self) -> f64 {
        self.failures.ratio(self.inner.graph())
    }
}

impl Topology for DegradedTopo<'_> {
    fn name(&self) -> String {
        format!(
            "{}!f{:.1}%",
            self.inner.name(),
            100.0 * self.failure_ratio()
        )
    }

    /// The *physical* graph: dead links keep their ports and buffers, they
    /// just never carry flits (masked at routing, see the module docs).
    fn graph(&self) -> &Csr {
        self.inner.graph()
    }

    fn endpoints(&self, r: u32) -> usize {
        self.inner.endpoints(r)
    }

    fn is_direct(&self) -> bool {
        self.inner.is_direct()
    }

    /// Forwarded unchanged: degraded PolarFly still advertises its
    /// algebraic structure, and the simulator layers the failure mask on
    /// top of it.
    fn routing_hint(&self) -> RoutingHint<'_> {
        self.inner.routing_hint()
    }

    fn link_failures(&self) -> Option<&FailureSet> {
        Some(&self.failures)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::PolarFlyTopo;

    #[test]
    fn degraded_preserves_structure_and_hint() {
        let pf = PolarFlyTopo::new(7, 4).unwrap();
        let f = FailureSet::sample_connected(pf.graph(), 0.1, 9);
        assert!(!f.is_empty());
        let d = DegradedTopo::new(&pf, f.clone());
        assert_eq!(d.router_count(), 57);
        assert_eq!(d.total_endpoints(), 57 * 4);
        assert_eq!(d.graph().edge_count(), pf.graph().edge_count());
        assert_eq!(d.residual().edge_count(), pf.graph().edge_count() - f.len());
        assert!(d.name().contains("PF(q=7,p=4)"));
        assert!(matches!(d.routing_hint(), RoutingHint::PolarFly(_)));
        assert_eq!(d.link_failures().unwrap(), &f);
        // Healthy topologies advertise no failures.
        assert!(pf.link_failures().is_none());
    }

    #[test]
    #[should_panic(expected = "disconnected")]
    fn rejects_disconnecting_failures() {
        let pf = PolarFlyTopo::new(5, 2).unwrap();
        // Cut vertex 0 off entirely.
        let cut: Vec<(u32, u32)> = pf.graph().neighbors(0).iter().map(|&v| (0, v)).collect();
        DegradedTopo::new(&pf, FailureSet::from_edges(&cut));
    }

    #[test]
    #[should_panic(expected = "not an edge")]
    fn rejects_nonexistent_links() {
        let pf = PolarFlyTopo::new(5, 2).unwrap();
        // ER_q has no self-adjacent quadric pair guaranteed missing; use a
        // non-adjacent pair found by scanning.
        let g = pf.graph();
        let (mut u, mut v) = (0u32, 0u32);
        'outer: for a in 0..g.vertex_count() as u32 {
            for b in (a + 1)..g.vertex_count() as u32 {
                if !g.has_edge(a, b) {
                    (u, v) = (a, b);
                    break 'outer;
                }
            }
        }
        DegradedTopo::new(&pf, FailureSet::from_edges(&[(u, v)]));
    }
}
