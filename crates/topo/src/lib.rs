//! Baseline interconnect topologies for the PolarFly evaluation (§VIII).
//!
//! Every comparison target of the paper is constructed from scratch:
//!
//! * [`slimfly`] — Slim Fly / McKay–Miller–Širáň graphs (`N = 2q²`,
//!   `k = (3q − δ)/2`), the most competitive diameter-2 rival.
//! * [`dragonfly`] — canonical Dragonfly (Kim et al.) with the palm-tree
//!   global-link arrangement; the paper's balanced DF1 and radix-matched
//!   DF2 variants.
//! * [`jellyfish`] — random regular graph baseline.
//! * [`fattree`] — 3-level folded-Clos fat tree with NCA routing metadata.
//! * [`hyperx`] — 2-D Hamming graphs (generalized Flattened Butterfly).
//! * [`oft`] — two-level Orthogonal Fat Tree (the un-quotiented `B(q)`
//!   as an indirect network; Table I candidate).
//! * [`mlfm`] — Multi-Layer Full Mesh (Table I candidate).
//! * [`named`] — Petersen and Hoffman–Singleton, the only diameter-2
//!   Moore-bound-achieving graphs (Fig. 2 reference points).
//! * [`traits`] — the [`Topology`] abstraction consumed by the simulator,
//!   plus the qualitative Table I feasibility matrix.
//! * [`degraded`] — [`DegradedTopo`], the failed-link mask wrapper behind
//!   the simulator's degraded-operation scenarios.
//! * [`transient`] — [`TransientTopo`], the time-varying counterpart:
//!   a [`pf_graph::FaultSchedule`] of fail/repair windows drives mid-run
//!   mask flips and staged route re-convergence in the simulator.

pub mod degraded;
pub mod dragonfly;
pub mod fattree;
pub mod hyperx;
pub mod jellyfish;
pub mod mlfm;
pub mod named;
pub mod oft;
pub mod slimfly;
pub mod traits;
pub mod transient;

pub use degraded::DegradedTopo;
pub use dragonfly::Dragonfly;
pub use fattree::FatTree;
pub use hyperx::HyperX;
pub use jellyfish::Jellyfish;
pub use mlfm::Mlfm;
pub use oft::Oft;
pub use slimfly::SlimFly;
pub use traits::{PolarFlyTopo, RoutingHint, Topology};
pub use transient::TransientTopo;
