//! Dragonfly (Kim, Dally, Scott, Abts — ISCA'08).
//!
//! Parameters `(a, h, p)`: groups of `a` routers, fully connected inside a
//! group; each router drives `h` global links and `p` endpoints. With the
//! maximal group count `g = a·h + 1` every group pair is joined by exactly
//! one global link, giving diameter 3 (local–global–local). Network radix
//! is `a − 1 + h`.
//!
//! Global links use the *palm-tree* arrangement (as in BookSim): global
//! channel `i ∈ [0, a·h)` of group `G` attaches to router `i / h`, port
//! `i mod h`, and runs to group `(G + i + 1) mod g`, where it lands on that
//! group's channel `a·h − 1 − i`. The arrangement is self-consistent (the
//! two endpoint formulas agree), which the tests verify structurally.
//!
//! The paper's variants: **DF1** balanced `(a, h, p) = (12, 6, 6)` — 876
//! routers, radix 17; **DF2** radix/scale-matched `(6, 27, 10)` — 978
//! routers, radix 32 (throughput-limited by its thin intra-group links,
//! which Fig. 8 shows).

use crate::traits::Topology;
use pf_graph::{Csr, GraphBuilder};

/// A Dragonfly instance.
pub struct Dragonfly {
    a: u32,
    h: u32,
    p: usize,
    groups: u32,
    graph: Csr,
}

impl Dragonfly {
    /// Builds a Dragonfly with `a` routers per group, `h` global links per
    /// router, `p` endpoints per router, and the maximal `g = a·h + 1`
    /// groups.
    pub fn new(a: u32, h: u32, p: usize) -> Dragonfly {
        assert!(a >= 1 && h >= 1);
        let groups = a * h + 1;
        let n = (groups * a) as usize;
        let id = |g: u32, r: u32| g * a + r;
        let mut b = GraphBuilder::new(n);
        // Intra-group cliques.
        for g in 0..groups {
            for r1 in 0..a {
                for r2 in (r1 + 1)..a {
                    b.add_edge(id(g, r1), id(g, r2));
                }
            }
        }
        // Palm-tree global links: channel i of group g → group g+i+1,
        // landing on channel a·h−1−i there. Add each link once (from the
        // side with the smaller "gap" i... every link appears once as
        // (g, i) with target gap i+1 ≤ g/2 rounding — simpler: add all and
        // let the builder deduplicate the mirrored copies).
        let ah = a * h;
        for g in 0..groups {
            for i in 0..ah {
                let tg = (g + i + 1) % groups;
                let ti = ah - 1 - i;
                b.add_edge_dedup(id(g, i / h), id(tg, ti / h));
            }
        }
        Dragonfly {
            a,
            h,
            p,
            groups,
            graph: b.build(),
        }
    }

    /// The paper's balanced DF1: `a = 12, h = 6, p = 6` (876 routers).
    pub fn df1() -> Dragonfly {
        Dragonfly::new(12, 6, 6)
    }

    /// The paper's radix/scale-matched DF2: `a = 6, h = 27, p = 10`
    /// (978 routers, radix 32).
    pub fn df2() -> Dragonfly {
        Dragonfly::new(6, 27, 10)
    }

    /// Routers per group.
    pub fn group_size(&self) -> u32 {
        self.a
    }

    /// Number of groups, `a·h + 1`.
    pub fn group_count(&self) -> u32 {
        self.groups
    }

    /// Group of router `r`.
    pub fn group_of(&self, r: u32) -> u32 {
        r / self.a
    }

    /// Network radix `a − 1 + h`.
    pub fn degree(&self) -> u32 {
        self.a - 1 + self.h
    }
}

impl Topology for Dragonfly {
    fn name(&self) -> String {
        format!("DF(a={},h={},p={})", self.a, self.h, self.p)
    }

    fn graph(&self) -> &Csr {
        &self.graph
    }

    fn endpoints(&self, _r: u32) -> usize {
        self.p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pf_graph::bfs;

    #[test]
    fn small_dragonfly_structure() {
        let df = Dragonfly::new(4, 2, 2);
        assert_eq!(df.group_count(), 9);
        assert_eq!(df.router_count(), 36);
        assert!(df.graph().is_regular(5)); // a−1+h = 5
        assert_eq!(bfs::diameter(df.graph()), Some(3));
    }

    #[test]
    fn every_group_pair_has_exactly_one_global_link() {
        let df = Dragonfly::new(4, 2, 2);
        let g = df.group_count();
        let mut counts = vec![0u32; (g * g) as usize];
        for &(u, v) in df.graph().edges() {
            let (gu, gv) = (df.group_of(u), df.group_of(v));
            if gu != gv {
                let (a, b) = (gu.min(gv), gu.max(gv));
                counts[(a * g + b) as usize] += 1;
            }
        }
        for g1 in 0..g {
            for g2 in (g1 + 1)..g {
                assert_eq!(counts[(g1 * g + g2) as usize], 1, "groups {g1},{g2}");
            }
        }
    }

    #[test]
    fn every_router_has_h_global_links() {
        let df = Dragonfly::new(6, 3, 3);
        for r in 0..df.router_count() as u32 {
            let global = df
                .graph()
                .neighbors(r)
                .iter()
                .filter(|&&w| df.group_of(w) != df.group_of(r))
                .count();
            assert_eq!(global, 3, "router {r}");
        }
    }

    #[test]
    fn df1_matches_table_v() {
        let df = Dragonfly::df1();
        assert_eq!(df.router_count(), 876);
        assert_eq!(df.degree(), 17);
        assert!(df.graph().is_regular(17));
        assert_eq!(bfs::diameter(df.graph()), Some(3));
    }

    #[test]
    fn df2_matches_table_v() {
        let df = Dragonfly::df2();
        assert_eq!(df.router_count(), 978);
        assert_eq!(df.degree(), 32);
        assert!(df.graph().is_regular(32));
    }
}
