//! Jellyfish (Singla et al., NSDI'12) — switches wired as a seeded random
//! regular graph. The paper uses it as the random-expander baseline
//! (Table V: 993 routers of radix 32, mirroring the PolarFly scale).

use crate::traits::Topology;
use pf_graph::{random_regular, Csr};

/// A Jellyfish (random regular) instance.
pub struct Jellyfish {
    graph: Csr,
    k: usize,
    p: usize,
    seed: u64,
}

impl Jellyfish {
    /// Builds a connected random `k`-regular network on `n` routers with
    /// `p` endpoints each. Deterministic in `seed`.
    pub fn new(n: usize, k: usize, p: usize, seed: u64) -> Jellyfish {
        Jellyfish {
            graph: random_regular::random_regular(n, k, seed),
            k,
            p,
            seed,
        }
    }

    /// The Table V configuration: 993 routers, network radix 32, p = 16.
    pub fn table_v(seed: u64) -> Jellyfish {
        Jellyfish::new(993, 32, 16, seed)
    }

    /// Network radix.
    pub fn degree(&self) -> usize {
        self.k
    }
}

impl Topology for Jellyfish {
    fn name(&self) -> String {
        format!(
            "JF(n={},k={},p={},s={})",
            self.graph.vertex_count(),
            self.k,
            self.p,
            self.seed
        )
    }

    fn graph(&self) -> &Csr {
        &self.graph
    }

    fn endpoints(&self, _r: u32) -> usize {
        self.p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pf_graph::bfs;

    #[test]
    fn table_v_configuration() {
        let jf = Jellyfish::table_v(7);
        assert_eq!(jf.router_count(), 993);
        assert!(jf.graph().is_regular(32));
        assert!(jf.graph().is_connected());
        // Random 32-regular graphs on 993 vertices have diameter 2-3 w.h.p.
        let d = bfs::diameter(jf.graph()).unwrap();
        assert!((2..=3).contains(&d), "unexpected diameter {d}");
    }

    #[test]
    fn deterministic_in_seed() {
        let a = Jellyfish::new(100, 6, 2, 3);
        let b = Jellyfish::new(100, 6, 2, 3);
        assert_eq!(a.graph().edges(), b.graph().edges());
    }
}
