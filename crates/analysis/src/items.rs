//! Item extraction: functions, impl context, and `#[cfg(test)]` ranges.
//!
//! A lightweight structural pass over the token stream from
//! [`crate::lexer`]: enough shape to (a) name every function —
//! qualified by its `impl` type when inside one — with its signature
//! and body token ranges, (b) know whether it takes `&mut self`, and
//! (c) know which line ranges belong to `#[cfg(test)]` modules so
//! test-only code can be exempted from source-scoped rules.

use crate::lexer::{Lexed, TokKind};

/// One extracted `fn` item.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// Bare function name (`next_output`).
    pub name: String,
    /// Qualified name (`MinAdaptive::next_output`) when inside an impl.
    pub qual: String,
    /// 1-indexed line of the `fn` keyword.
    pub line: u32,
    /// The receiver is `&mut self`.
    pub has_mut_self: bool,
    /// The parameter list is the receiver alone (`(&mut self)`):
    /// `fn next(&mut self)` is the Iterator protocol, whose state is
    /// caller-local by construction.
    pub self_only: bool,
    /// Token index range `[start, end)` of the body including braces,
    /// if the function has one (trait declarations do not).
    pub body: Option<(usize, usize)>,
}

/// Structural facts about one lexed file.
#[derive(Debug, Default)]
pub struct FileItems {
    /// Every `fn` item in source order.
    pub fns: Vec<FnItem>,
    /// Inclusive line ranges covered by `#[cfg(test)] mod` blocks.
    pub test_line_ranges: Vec<(u32, u32)>,
}

impl FileItems {
    /// Whether `line` falls inside a `#[cfg(test)]` module.
    pub fn in_test_mod(&self, line: u32) -> bool {
        self.test_line_ranges
            .iter()
            .any(|&(lo, hi)| line >= lo && line <= hi)
    }
}

/// Rust keywords that can never be call targets or type names.
pub fn is_keyword(s: &str) -> bool {
    matches!(
        s,
        "as" | "break"
            | "const"
            | "continue"
            | "crate"
            | "dyn"
            | "else"
            | "enum"
            | "extern"
            | "false"
            | "fn"
            | "for"
            | "if"
            | "impl"
            | "in"
            | "let"
            | "loop"
            | "match"
            | "mod"
            | "move"
            | "mut"
            | "pub"
            | "ref"
            | "return"
            | "self"
            | "Self"
            | "static"
            | "struct"
            | "super"
            | "trait"
            | "true"
            | "type"
            | "unsafe"
            | "use"
            | "where"
            | "while"
            | "async"
            | "await"
    )
}

/// Computes, for every `{` token index, the index of its matching `}`.
/// Unbalanced files (possible in fixtures) close at end of stream.
fn brace_matches(lx: &Lexed) -> Vec<(usize, usize)> {
    let mut stack = Vec::new();
    let mut pairs = Vec::new();
    for (i, t) in lx.toks.iter().enumerate() {
        match t.kind {
            TokKind::Punct('{') => stack.push(i),
            TokKind::Punct('}') => {
                if let Some(open) = stack.pop() {
                    pairs.push((open, i));
                }
            }
            _ => {}
        }
    }
    let end = lx.toks.len();
    for open in stack {
        pairs.push((open, end.saturating_sub(1)));
    }
    pairs.sort_unstable();
    pairs
}

/// Matching `}` index for the `{` at token index `open`.
fn close_of(pairs: &[(usize, usize)], open: usize) -> usize {
    match pairs.binary_search_by_key(&open, |&(o, _)| o) {
        Ok(k) => pairs[k].1,
        Err(_) => open,
    }
}

/// Extracts functions, impl contexts, and test-module ranges.
pub fn extract(lx: &Lexed) -> FileItems {
    let pairs = brace_matches(lx);
    let toks = &lx.toks;
    let n = toks.len();
    let mut out = FileItems::default();
    // Stack of (body_close_token_index, impl type name).
    let mut impl_stack: Vec<(usize, String)> = Vec::new();
    let mut pending_cfg_test = false;
    let mut i = 0usize;
    while i < n {
        while let Some(&(close, _)) = impl_stack.last() {
            if i > close {
                impl_stack.pop();
            } else {
                break;
            }
        }
        match &toks[i].kind {
            // `#[cfg(test)]` attribute: remember it for the next `mod`.
            TokKind::Punct('#')
                if matches!(toks.get(i + 1).map(|t| &t.kind), Some(TokKind::Punct('['))) =>
            {
                let mut j = i + 2;
                let mut depth = 1u32;
                let mut attr_idents: Vec<&str> = Vec::new();
                while j < n && depth > 0 {
                    match &toks[j].kind {
                        TokKind::Punct('[') => depth += 1,
                        TokKind::Punct(']') => depth -= 1,
                        TokKind::Ident(s) => attr_idents.push(s),
                        _ => {}
                    }
                    j += 1;
                }
                if attr_idents.first() == Some(&"cfg") && attr_idents.contains(&"test") {
                    pending_cfg_test = true;
                }
                i = j;
            }
            TokKind::Ident(s) if s == "mod" => {
                // `mod name { ... }` — record its lines if cfg(test)-gated.
                let mut j = i + 1;
                while j < n && !matches!(toks[j].kind, TokKind::Punct('{') | TokKind::Punct(';')) {
                    j += 1;
                }
                if pending_cfg_test {
                    pending_cfg_test = false;
                    if j < n && toks[j].kind == TokKind::Punct('{') {
                        let close = close_of(&pairs, j);
                        let hi = toks.get(close).map_or(u32::MAX, |t| t.line);
                        out.test_line_ranges.push((toks[i].line, hi));
                    }
                }
                i = j + 1;
            }
            TokKind::Ident(s) if s == "impl" => {
                pending_cfg_test = false;
                // Collect tokens up to the impl body `{` to name the type.
                let mut j = i + 1;
                let mut angle = 0i32;
                let mut after_for = false;
                let mut first_ident: Option<String> = None;
                let mut for_ident: Option<String> = None;
                while j < n {
                    match &toks[j].kind {
                        TokKind::Punct('{') if angle == 0 => break,
                        TokKind::Punct(';') if angle == 0 => break,
                        TokKind::Punct('<') => angle += 1,
                        TokKind::Punct('>') => {
                            // `->` in Fn-trait bounds keeps angle depth.
                            let arrow = j > 0 && toks[j - 1].kind == TokKind::Punct('-');
                            if !arrow {
                                angle -= 1;
                            }
                        }
                        TokKind::Ident(s) if angle == 0 => {
                            if s == "for" {
                                after_for = true;
                            } else if s == "where" {
                                // Type name comes before any where clause.
                            } else if !is_keyword(s) {
                                if after_for && for_ident.is_none() {
                                    for_ident = Some(s.clone());
                                } else if first_ident.is_none() {
                                    first_ident = Some(s.clone());
                                }
                            }
                        }
                        _ => {}
                    }
                    j += 1;
                }
                let ty = for_ident.or(first_ident).unwrap_or_else(|| "?".to_string());
                if j < n && toks[j].kind == TokKind::Punct('{') {
                    impl_stack.push((close_of(&pairs, j), ty));
                }
                i = j + 1;
            }
            TokKind::Ident(s) if s == "fn" => {
                pending_cfg_test = false;
                let Some(TokKind::Ident(name)) = toks.get(i + 1).map(|t| &t.kind) else {
                    i += 1;
                    continue;
                };
                let name = name.clone();
                let line = toks[i].line;
                // Scan the signature: stop at `{` or `;` outside all
                // bracket kinds; `->`'s `>` must not close a generic.
                let mut j = i + 2;
                let mut angle = 0i32;
                let mut paren = 0i32;
                let mut bracket = 0i32;
                let mut has_mut_self = false;
                let mut self_only = false;
                let mut params_open: Option<usize> = None;
                while j < n {
                    match &toks[j].kind {
                        TokKind::Punct('{') if angle <= 0 && paren == 0 && bracket == 0 => break,
                        TokKind::Punct(';') if angle <= 0 && paren == 0 && bracket == 0 => break,
                        TokKind::Punct('<') => angle += 1,
                        TokKind::Punct('>') => {
                            let arrow = j > 0 && toks[j - 1].kind == TokKind::Punct('-');
                            if !arrow {
                                angle -= 1;
                            }
                        }
                        TokKind::Punct('(') => {
                            if paren == 0 && angle <= 0 && params_open.is_none() {
                                params_open = Some(j);
                            }
                            paren += 1;
                        }
                        TokKind::Punct(')') => paren -= 1,
                        TokKind::Punct('[') => bracket += 1,
                        TokKind::Punct(']') => bracket -= 1,
                        _ => {}
                    }
                    j += 1;
                }
                if let Some(po) = params_open {
                    // `(&mut self, ...` possibly with a lifetime: `&'a mut self`.
                    let mut k = po + 1;
                    if matches!(toks.get(k).map(|t| &t.kind), Some(TokKind::Punct('&'))) {
                        k += 1;
                        if matches!(toks.get(k).map(|t| &t.kind), Some(TokKind::Lifetime)) {
                            k += 1;
                        }
                        if matches!(toks.get(k).map(|t| &t.kind), Some(TokKind::Ident(s)) if s == "mut")
                            && matches!(toks.get(k + 1).map(|t| &t.kind), Some(TokKind::Ident(s)) if s == "self")
                        {
                            has_mut_self = true;
                        }
                    }
                    // Receiver-only parameter list: no comma at paren
                    // depth 1 outside generic arguments.
                    let starts_self = matches!(
                        toks.get(po + 1).map(|t| &t.kind),
                        Some(TokKind::Punct('&')) | Some(TokKind::Ident(_))
                    );
                    if starts_self {
                        let mut pd = 0i32;
                        let mut ad = 0i32;
                        let mut saw_self = false;
                        let mut comma = false;
                        for (off, t) in toks[po..j.min(n)].iter().enumerate() {
                            match &t.kind {
                                TokKind::Punct('(') => pd += 1,
                                TokKind::Punct(')') => {
                                    pd -= 1;
                                    if pd == 0 {
                                        break;
                                    }
                                }
                                TokKind::Punct('<') => ad += 1,
                                TokKind::Punct('>') => {
                                    let arrow =
                                        off > 0 && toks[po + off - 1].kind == TokKind::Punct('-');
                                    if !arrow {
                                        ad -= 1;
                                    }
                                }
                                TokKind::Punct(',') if pd == 1 && ad == 0 => comma = true,
                                TokKind::Ident(s) if s == "self" && pd == 1 => saw_self = true,
                                _ => {}
                            }
                        }
                        self_only = saw_self && !comma;
                    }
                }
                let body = (j < n && toks[j].kind == TokKind::Punct('{'))
                    .then(|| (j, close_of(&pairs, j) + 1));
                let qual = match impl_stack.last() {
                    Some((_, ty)) => format!("{ty}::{name}"),
                    None => name.clone(),
                };
                out.fns.push(FnItem {
                    name,
                    qual,
                    line,
                    has_mut_self,
                    self_only,
                    body,
                });
                // Continue *inside* the body: nested fns are items too.
                i = j + 1;
            }
            _ => {
                i += 1;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn extracts_impl_qualified_fns() {
        let src = "
            impl<'t> RoutingAlgorithm for MinAdaptive<'t> {
                fn next_output(&self, x: u32) -> u32 { helper(x) }
            }
            fn free(a: u32) {}
        ";
        let items = extract(&lex(src));
        let quals: Vec<&str> = items.fns.iter().map(|f| f.qual.as_str()).collect();
        assert_eq!(quals, vec!["MinAdaptive::next_output", "free"]);
    }

    #[test]
    fn detects_mut_self_receiver() {
        let src = "
            impl S {
                fn a(&self) {}
                fn b(&mut self) {}
                fn c(&'a mut self) {}
                fn d(mut self) {}
            }
        ";
        let items = extract(&lex(src));
        let muts: Vec<bool> = items.fns.iter().map(|f| f.has_mut_self).collect();
        assert_eq!(muts, vec![false, true, true, false]);
    }

    #[test]
    fn fn_trait_bound_generics_do_not_break_signatures() {
        let src = "fn apply<F: Fn(u32) -> u32>(f: F) -> [u8; 4] { todo_body() }";
        let items = extract(&lex(src));
        assert_eq!(items.fns.len(), 1);
        assert!(items.fns[0].body.is_some());
    }

    #[test]
    fn cfg_test_mod_ranges() {
        let src = "
            fn live() {}
            #[cfg(test)]
            mod tests {
                fn helper() {}
            }
        ";
        let items = extract(&lex(src));
        assert_eq!(items.test_line_ranges.len(), 1);
        let helper = items.fns.iter().find(|f| f.name == "helper").unwrap();
        assert!(items.in_test_mod(helper.line));
        let live = items.fns.iter().find(|f| f.name == "live").unwrap();
        assert!(!items.in_test_mod(live.line));
    }
}
