//! Rule scoping: which files each rule applies to.
//!
//! Scopes are prefix filters over `/`-normalized workspace-relative
//! paths. [`Config::workspace`] encodes the repo's actual contract
//! surface (see DESIGN.md "Determinism contract and static analysis");
//! the fixture tests build narrower configs over the corpus directory.

/// A path-prefix include/exclude filter.
#[derive(Debug, Clone, Default)]
pub struct Scope {
    /// Prefixes a path must start with (empty string matches all).
    pub include: Vec<String>,
    /// Prefixes that opt a path back out.
    pub exclude: Vec<String>,
}

impl Scope {
    /// Scope from include prefixes only.
    pub fn of(include: &[&str]) -> Self {
        Scope {
            include: include.iter().map(|s| s.to_string()).collect(),
            exclude: Vec::new(),
        }
    }

    /// Adds exclude prefixes.
    pub fn without(mut self, exclude: &[&str]) -> Self {
        self.exclude = exclude.iter().map(|s| s.to_string()).collect();
        self
    }

    /// Whether `path` (workspace-relative, `/`-separated) is in scope.
    pub fn contains(&self, path: &str) -> bool {
        self.include.iter().any(|p| path.starts_with(p.as_str()))
            && !self.exclude.iter().any(|p| path.starts_with(p.as_str()))
    }
}

/// Full analyzer configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// Top-level directories to walk for `.rs` files.
    pub scan_roots: Vec<String>,
    /// Path prefixes never scanned (fixture corpus, vendor, target).
    pub scan_exclude: Vec<String>,
    /// `rng-discipline` scope: entropy sources banned here.
    pub rng_scope: Scope,
    /// `ordered-iteration` scope: hash collections banned here.
    pub ordered_scope: Scope,
    /// `wall-clock-ban` scope: `Instant`/`SystemTime` banned here.
    pub wall_clock_scope: Scope,
    /// `unsafe-ban` scope.
    pub unsafe_scope: Scope,
    /// `probe-purity` call-graph scope (library sources only).
    pub purity_scope: Scope,
    /// Exact relative paths of engine hot-path modules
    /// (`panic-discipline` applies only here).
    pub hot_path_files: Vec<String>,
    /// Function names rooting the probe-purity reachability walk.
    pub probe_roots: Vec<String>,
    /// Function names rooting the telemetry-purity reachability walk
    /// (the record hooks and the epoch snapshot).
    pub telemetry_roots: Vec<String>,
    /// Type names whose `&mut self` methods are exempt from
    /// telemetry-purity: the collector mutates *itself* freely — the
    /// rule polices mutation of everything else (the simulated state).
    pub telemetry_types: Vec<String>,
}

/// Every rule id the analyzer knows, sorted. `pragma` is the meta-rule
/// covering malformed or unused suppressions; it cannot be suppressed.
pub const RULES: &[&str] = &[
    "ordered-iteration",
    "panic-discipline",
    "pragma",
    "probe-purity",
    "rng-discipline",
    "telemetry-purity",
    "unsafe-ban",
    "wall-clock-ban",
];

/// Library source directories of every workspace crate.
const CRATE_SRC: &[&str] = &[
    "crates/analysis/src/",
    "crates/bench/src/",
    "crates/core/src/",
    "crates/galois/src/",
    "crates/graph/src/",
    "crates/sim/src/",
    "crates/topo/src/",
    "crates/workload/src/",
    "src/",
];

impl Config {
    /// The repo's production configuration.
    pub fn workspace() -> Self {
        Config {
            scan_roots: vec![
                "crates".to_string(),
                "src".to_string(),
                "tests".to_string(),
                "examples".to_string(),
            ],
            scan_exclude: vec!["crates/analysis/tests/fixtures".to_string()],
            // No entropy anywhere: every RNG in the tree must be
            // constructed from an explicit seed.
            rng_scope: Scope::of(&[""]),
            // Hash iteration order feeds SimResult and route tables
            // through library code; tests may hash freely.
            ordered_scope: Scope::of(CRATE_SRC),
            // Wall clocks only in the bench harness; the one
            // observability site in the engine carries a pragma.
            wall_clock_scope: Scope::of(&[""]).without(&["crates/bench/"]),
            unsafe_scope: Scope::of(&[""]),
            // Bench binaries sit downstream of the engine: nothing on
            // the probe path can call into them, but their helper names
            // (`scale`, `Row::new`) alias engine-adjacent code.
            purity_scope: Scope::of(CRATE_SRC).without(&["crates/bench/"]),
            hot_path_files: [
                "alloc",
                "engine",
                "flow",
                "inject",
                "order",
                "packet",
                "phase",
                "queues",
                "router",
                "routing",
                "shard",
                "skip",
                "tables",
                "telemetry",
            ]
            .iter()
            .map(|m| format!("crates/sim/src/{m}.rs"))
            .collect(),
            probe_roots: vec![
                "route_probe".to_string(),
                "probe_transit_shard".to_string(),
                "probe_eject_shard".to_string(),
                // Skip predicates the probe workers consult (perf-only
                // filters whose reads must stay pure in probe context).
                "is_awake".to_string(),
            ],
            telemetry_roots: vec![
                "trace_admit".to_string(),
                "trace_route".to_string(),
                "trace_grant".to_string(),
                "trace_eject".to_string(),
                "trace_retransmit".to_string(),
                "prof_lap".to_string(),
                "telemetry_snapshot_epoch".to_string(),
            ],
            telemetry_types: vec!["TelemetryCtl".to_string()],
        }
    }
}
