//! A hand-rolled Rust lexer: the token stream every rule works from.
//!
//! The analyzer has no access to `syn` or any registry crate (the
//! workspace vendors only rand/rayon/proptest/criterion), so the rules
//! operate on a faithful lexical view instead of a parse tree. The
//! lexer's one hard obligation is *never to confuse the three string
//! universes*: code identifiers, string-literal contents, and comment
//! text. A banned identifier inside a string literal (e.g. this crate's
//! own rule tables) must not trip a rule, and suppression pragmas live
//! only in comment text.
//!
//! Handled: line and (nested) block comments, doc comments, string /
//! raw-string / byte-string / char / byte-char literals, lifetimes
//! (disambiguated from char literals), numeric literals, identifiers
//! and keywords, and single-character punctuation. Every token carries
//! its 1-indexed source line.

/// One lexical token with its 1-indexed source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tok {
    /// 1-indexed line the token starts on.
    pub line: u32,
    /// Token payload.
    pub kind: TokKind,
}

/// Token payload kinds. Literal contents are deliberately dropped:
/// rules must never match inside them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`unsafe`, `fn`, `HashMap`, ...).
    Ident(String),
    /// A single punctuation character (`(`, `{`, `.`, `&`, `!`, ...).
    Punct(char),
    /// String / char / byte / numeric literal (contents dropped).
    Literal,
    /// A lifetime such as `'a` or `'static`.
    Lifetime,
}

/// A comment with its text, for pragma extraction.
#[derive(Debug, Clone)]
pub struct Comment {
    /// 1-indexed line the comment starts on.
    pub line: u32,
    /// Raw comment text without the `//` / `/*` markers.
    pub text: String,
}

/// Full lexer output for one file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Code tokens in source order.
    pub toks: Vec<Tok>,
    /// Comments in source order.
    pub comments: Vec<Comment>,
}

impl Lexed {
    /// Sorted, deduplicated list of lines holding at least one code token.
    pub fn code_lines(&self) -> Vec<u32> {
        let mut lines: Vec<u32> = self.toks.iter().map(|t| t.line).collect();
        lines.sort_unstable();
        lines.dedup();
        lines
    }
}

/// Lexes `src`, splitting code tokens from comment text.
///
/// The lexer is total: any byte sequence produces *some* token stream
/// (unterminated literals consume to end of file), so a syntactically
/// broken fixture still yields deterministic diagnostics.
pub fn lex(src: &str) -> Lexed {
    let b: Vec<char> = src.chars().collect();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line = 1u32;
    let n = b.len();
    while i < n {
        let c = b[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if i + 1 < n && b[i + 1] == '/' => {
                let start = i + 2;
                let mut j = start;
                while j < n && b[j] != '\n' {
                    j += 1;
                }
                out.comments.push(Comment {
                    line,
                    text: b[start..j].iter().collect(),
                });
                i = j;
            }
            '/' if i + 1 < n && b[i + 1] == '*' => {
                // Nested block comment.
                let start_line = line;
                let start = i + 2;
                let mut depth = 1u32;
                let mut j = start;
                while j < n && depth > 0 {
                    if b[j] == '\n' {
                        line += 1;
                        j += 1;
                    } else if b[j] == '/' && j + 1 < n && b[j + 1] == '*' {
                        depth += 1;
                        j += 2;
                    } else if b[j] == '*' && j + 1 < n && b[j + 1] == '/' {
                        depth -= 1;
                        j += 2;
                    } else {
                        j += 1;
                    }
                }
                let end = j.saturating_sub(2).max(start);
                out.comments.push(Comment {
                    line: start_line,
                    text: b[start..end].iter().collect(),
                });
                i = j;
            }
            '"' => {
                let (j, nl) = scan_string(&b, i + 1);
                out.toks.push(Tok {
                    line,
                    kind: TokKind::Literal,
                });
                line += nl;
                i = j;
            }
            'r' | 'b' if starts_raw_or_byte_literal(&b, i) => {
                let (j, nl, kind) = scan_prefixed_literal(&b, i);
                out.toks.push(Tok { line, kind });
                line += nl;
                i = j;
            }
            '\'' => {
                // Lifetime vs char literal: a lifetime is `'` + ident run
                // NOT followed by a closing `'`.
                let mut j = i + 1;
                while j < n && (b[j].is_alphanumeric() || b[j] == '_') {
                    j += 1;
                }
                let is_lifetime = j > i + 1 && (j >= n || b[j] != '\'');
                if is_lifetime {
                    out.toks.push(Tok {
                        line,
                        kind: TokKind::Lifetime,
                    });
                    i = j;
                } else {
                    let (j, nl) = scan_char(&b, i + 1);
                    out.toks.push(Tok {
                        line,
                        kind: TokKind::Literal,
                    });
                    line += nl;
                    i = j;
                }
            }
            c if c.is_ascii_digit() => {
                let mut j = i + 1;
                while j < n && (b[j].is_alphanumeric() || b[j] == '_' || b[j] == '.') {
                    // Stop a float scan from eating a method call: `1.max(x)`.
                    if b[j] == '.' && j + 1 < n && (b[j + 1].is_alphabetic() || b[j + 1] == '_') {
                        break;
                    }
                    j += 1;
                }
                out.toks.push(Tok {
                    line,
                    kind: TokKind::Literal,
                });
                i = j;
            }
            c if c.is_alphabetic() || c == '_' => {
                let mut j = i + 1;
                while j < n && (b[j].is_alphanumeric() || b[j] == '_') {
                    j += 1;
                }
                let ident: String = b[i..j].iter().collect();
                out.toks.push(Tok {
                    line,
                    kind: TokKind::Ident(ident),
                });
                i = j;
            }
            c => {
                out.toks.push(Tok {
                    line,
                    kind: TokKind::Punct(c),
                });
                i += 1;
            }
        }
    }
    out
}

/// Whether position `i` starts a raw string (`r"`, `r#"`), byte string
/// (`b"`, `br"`, `br#"`) or byte char (`b'`) rather than an identifier.
fn starts_raw_or_byte_literal(b: &[char], i: usize) -> bool {
    let n = b.len();
    let c = b[i];
    if c == 'r' {
        let mut j = i + 1;
        while j < n && b[j] == '#' {
            j += 1;
        }
        j < n && b[j] == '"' && (j > i + 1 || b[i + 1] == '"')
    } else {
        // b"..."  b'...'  br"..."  br#"..."#
        match b.get(i + 1) {
            Some('"') | Some('\'') => true,
            Some('r') => {
                let mut j = i + 2;
                while j < n && b[j] == '#' {
                    j += 1;
                }
                j < n && b[j] == '"'
            }
            _ => false,
        }
    }
}

/// Scans a literal starting with `r`/`b` at `i`; returns (next index,
/// newline count, token kind).
fn scan_prefixed_literal(b: &[char], i: usize) -> (usize, u32, TokKind) {
    let n = b.len();
    let mut j = i;
    let mut raw = false;
    if b[j] == 'b' {
        j += 1;
    }
    if j < n && b[j] == 'r' {
        raw = true;
        j += 1;
    }
    let mut hashes = 0usize;
    while j < n && b[j] == '#' {
        hashes += 1;
        j += 1;
    }
    if j < n && b[j] == '\'' {
        let (k, nl) = scan_char(b, j + 1);
        return (k, nl, TokKind::Literal);
    }
    debug_assert!(j >= n || b[j] == '"');
    j += 1; // opening quote
    let mut nl = 0u32;
    if raw {
        // Ends at `"` followed by `hashes` hashes; no escapes.
        while j < n {
            if b[j] == '\n' {
                nl += 1;
                j += 1;
                continue;
            }
            if b[j] == '"' {
                let mut k = j + 1;
                let mut h = 0usize;
                while k < n && h < hashes && b[k] == '#' {
                    h += 1;
                    k += 1;
                }
                if h == hashes {
                    return (k, nl, TokKind::Literal);
                }
            }
            j += 1;
        }
        (j, nl, TokKind::Literal)
    } else {
        let (k, nl) = scan_string(b, j);
        (k, nl, TokKind::Literal)
    }
}

/// Scans a non-raw string body starting just past the opening quote;
/// returns (index past closing quote, newline count).
fn scan_string(b: &[char], mut j: usize) -> (usize, u32) {
    let n = b.len();
    let mut nl = 0u32;
    while j < n {
        match b[j] {
            '\\' => j += 2,
            '\n' => {
                nl += 1;
                j += 1;
            }
            '"' => return (j + 1, nl),
            _ => j += 1,
        }
    }
    (j, nl)
}

/// Scans a char-literal body starting just past the opening quote;
/// returns (index past closing quote, newline count).
fn scan_char(b: &[char], mut j: usize) -> (usize, u32) {
    let n = b.len();
    let mut nl = 0u32;
    while j < n {
        match b[j] {
            '\\' => j += 2,
            '\n' => {
                nl += 1;
                j += 1;
            }
            '\'' => return (j + 1, nl),
            _ => j += 1,
        }
    }
    (j, nl)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .toks
            .into_iter()
            .filter_map(|t| match t.kind {
                TokKind::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn strings_hide_identifiers() {
        let src = r##"let x = "thread_rng inside a string"; let y = r#"HashMap "quoted" too"#;"##;
        let ids = idents(src);
        assert!(!ids.iter().any(|s| s == "thread_rng" || s == "HashMap"));
        assert!(ids.iter().any(|s| s == "x"));
    }

    #[test]
    fn comments_are_separated() {
        let src = "// thread_rng in a comment\nfn f() {} /* block\nHashMap */";
        let lx = lex(src);
        assert!(!lx
            .toks
            .iter()
            .any(|t| matches!(&t.kind, TokKind::Ident(s) if s == "thread_rng" || s == "HashMap")));
        assert_eq!(lx.comments.len(), 2);
        assert_eq!(lx.comments[0].line, 1);
    }

    #[test]
    fn lifetimes_are_not_chars() {
        let src = "fn f<'a>(x: &'a str) -> char { 'x' }";
        let lx = lex(src);
        let lifetimes = lx
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .count();
        assert_eq!(lifetimes, 2);
    }

    #[test]
    fn lines_survive_multiline_literals() {
        let src = "let a = \"x\ny\";\nlet thread_rng_like = 1;";
        let lx = lex(src);
        let tok = lx
            .toks
            .iter()
            .find(|t| matches!(&t.kind, TokKind::Ident(s) if s == "thread_rng_like"))
            .expect("ident present");
        assert_eq!(tok.line, 3);
    }

    #[test]
    fn float_method_call_boundary() {
        let ids = idents("let a = 1.max(2); let b = 1.5;");
        assert!(ids.iter().any(|s| s == "max"));
    }
}
