//! Name-resolved call graph and reachability from the probe roots.
//!
//! Without type information, a call `foo(..)` or `x.foo(..)` resolves
//! to *every* workspace function named `foo` — a sound over-
//! approximation for reachability (it can only add edges, never miss a
//! workspace callee), with one documented carve-out: method calls whose
//! name shadows a ubiquitous std collection/option mutator (`push`,
//! `insert`, `take`, ...) are not resolved, because in practice they
//! are `Vec`/`BTreeMap`/`Option` operations on worker-local staging
//! state and resolving them by bare name would wire the graph to
//! unrelated container types. The shadow list is in
//! [`STD_SHADOW_METHODS`]; everything on it is mutation-flavored, so a
//! genuine engine mutation hiding behind such a name must come through
//! a `&mut self` method *reachable under its caller's real name*, which
//! the rule still sees.

use crate::items::{is_keyword, FnItem};
use crate::lexer::{Lexed, TokKind};
use std::collections::{BTreeMap, BTreeSet};

/// Method names never resolved to workspace functions (std shadows).
pub const STD_SHADOW_METHODS: &[&str] = &[
    "push",
    "pop",
    "push_back",
    "push_front",
    "pop_back",
    "pop_front",
    "insert",
    "remove",
    "clear",
    "extend",
    "append",
    "drain",
    "truncate",
    "retain",
    "resize",
    "fill",
    "sort",
    "sort_by",
    "sort_by_key",
    "sort_unstable",
    "sort_unstable_by",
    "dedup",
    "take",
    "replace",
    "get_or_insert_with",
    "entry",
    "swap",
    "reverse",
    "rotate_left",
    "rotate_right",
    "find",
    "position",
    "min",
    "max",
    "clamp",
];

/// One lexical call site inside a function body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Called name (last path segment / method name).
    pub name: String,
    /// 1-indexed source line.
    pub line: u32,
    /// The call was `receiver.name(..)` rather than `name(..)`.
    pub is_method: bool,
    /// For `Type::name(..)` calls, the type qualifier — resolved
    /// against impl-qualified names first, which keeps ubiquitous
    /// constructor names (`new`, `build`, `default`) from aliasing
    /// every type in the workspace.
    pub qual: Option<String>,
}

/// Extracts the call sites of a function body token range.
pub fn calls_in_body(lx: &Lexed, body: (usize, usize)) -> Vec<CallSite> {
    let toks = &lx.toks;
    let mut out = Vec::new();
    let (lo, hi) = body;
    for i in lo..hi.min(toks.len()) {
        let TokKind::Ident(name) = &toks[i].kind else {
            continue;
        };
        if is_keyword(name) {
            continue;
        }
        match toks.get(i + 1).map(|t| &t.kind) {
            // Macro invocation: `name!(..)` is not a function call.
            Some(TokKind::Punct('!')) => {}
            Some(TokKind::Punct('(')) => {
                // `fn name(` is a nested definition, not a call.
                let after_fn =
                    i >= 1 && matches!(&toks[i - 1].kind, TokKind::Ident(k) if k == "fn");
                if after_fn {
                    continue;
                }
                let is_method = i >= 1 && matches!(toks[i - 1].kind, TokKind::Punct('.'));
                // `Type::name(` — capture an uppercase-initial path
                // qualifier (modules are lowercase by convention).
                let mut qual = None;
                if !is_method
                    && i >= 3
                    && matches!(toks[i - 1].kind, TokKind::Punct(':'))
                    && matches!(toks[i - 2].kind, TokKind::Punct(':'))
                {
                    if let TokKind::Ident(q) = &toks[i - 3].kind {
                        if q.chars().next().is_some_and(char::is_uppercase) {
                            qual = Some(q.clone());
                        }
                    }
                }
                out.push(CallSite {
                    name: name.clone(),
                    line: toks[i].line,
                    is_method,
                    qual,
                });
            }
            _ => {}
        }
    }
    out
}

/// A function key: `(file, index-within-file)`.
pub type FnKey = (String, usize);

/// The workspace call graph over all extracted functions.
pub struct CallGraph {
    /// name → every function key defining that name.
    by_name: BTreeMap<String, Vec<FnKey>>,
    /// impl-qualified name (`RouteTables::build`) → defining keys.
    by_qual: BTreeMap<String, Vec<FnKey>>,
    /// function key → call sites in its body.
    calls: BTreeMap<FnKey, Vec<CallSite>>,
    /// function key → (qualified name, line, flagged `&mut self`).
    ///
    /// `fn next(&mut self)` with no other parameters is exempt from the
    /// `&mut self` flag: that signature is the Iterator protocol, whose
    /// mutable state is owned by the probing caller, not the shared
    /// engine (the body is still scanned for draws/atomics).
    pub info: BTreeMap<FnKey, (String, u32, bool)>,
}

impl CallGraph {
    /// Builds the graph from every file's lexed tokens and items.
    pub fn build(lexed: &BTreeMap<String, Lexed>, files: &BTreeMap<String, Vec<FnItem>>) -> Self {
        let mut by_name: BTreeMap<String, Vec<FnKey>> = BTreeMap::new();
        let mut by_qual: BTreeMap<String, Vec<FnKey>> = BTreeMap::new();
        let mut calls = BTreeMap::new();
        let mut info = BTreeMap::new();
        for (file, fns) in files {
            let lx = &lexed[file];
            for (idx, f) in fns.iter().enumerate() {
                let key = (file.clone(), idx);
                by_name.entry(f.name.clone()).or_default().push(key.clone());
                by_qual.entry(f.qual.clone()).or_default().push(key.clone());
                let iterator_protocol = f.name == "next" && f.self_only;
                info.insert(
                    key.clone(),
                    (f.qual.clone(), f.line, f.has_mut_self && !iterator_protocol),
                );
                if let Some(body) = f.body {
                    calls.insert(key, calls_in_body(lx, body));
                }
            }
        }
        CallGraph {
            by_name,
            by_qual,
            calls,
            info,
        }
    }

    /// Call sites of `key`'s body (empty for bodyless declarations).
    pub fn calls_of(&self, key: &FnKey) -> &[CallSite] {
        self.calls.get(key).map_or(&[], Vec::as_slice)
    }

    /// Every function defining `name`.
    pub fn defs_of(&self, name: &str) -> &[FnKey] {
        self.by_name.get(name).map_or(&[], Vec::as_slice)
    }

    /// BFS from the named roots; returns each reachable function keyed
    /// to the qualified-name chain that first reached it (for
    /// diagnostics). Deterministic: BTreeMap iteration order.
    pub fn reachable_from(&self, roots: &[String]) -> BTreeMap<FnKey, Vec<String>> {
        let mut seen: BTreeMap<FnKey, Vec<String>> = BTreeMap::new();
        let mut queue: Vec<FnKey> = Vec::new();
        for root in roots {
            for key in self.defs_of(root) {
                if !seen.contains_key(key) {
                    let qual = self.info[key].0.clone();
                    seen.insert(key.clone(), vec![qual]);
                    queue.push(key.clone());
                }
            }
        }
        let mut head = 0usize;
        while head < queue.len() {
            let key = queue[head].clone();
            head += 1;
            let chain = seen[&key].clone();
            let mut targets: BTreeSet<FnKey> = BTreeSet::new();
            for call in self.calls_of(&key) {
                if call.is_method && STD_SHADOW_METHODS.contains(&call.name.as_str()) {
                    continue;
                }
                match &call.qual {
                    // A concrete type qualifier resolves exactly: either
                    // the workspace defines `Type::name`, or the call
                    // targets std/vendor code outside the graph. (`Self`
                    // falls back to name resolution — the impl type is
                    // not tracked through the alias.)
                    Some(q) if q != "Self" => {
                        let qualified = format!("{q}::{}", call.name);
                        if let Some(keys) = self.by_qual.get(&qualified) {
                            targets.extend(keys.iter().cloned());
                        }
                    }
                    _ => targets.extend(self.defs_of(&call.name).iter().cloned()),
                }
            }
            for nk in targets {
                if !seen.contains_key(&nk) {
                    let mut c = chain.clone();
                    c.push(self.info[&nk].0.clone());
                    seen.insert(nk.clone(), c.clone());
                    queue.push(nk);
                }
            }
        }
        seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::items::extract;
    use crate::lexer::lex;

    fn graph_of(src: &str) -> CallGraph {
        let lx = lex(src);
        let fns = extract(&lx).fns;
        let mut lexed = BTreeMap::new();
        lexed.insert("t.rs".to_string(), lx);
        let mut files = BTreeMap::new();
        files.insert("t.rs".to_string(), fns);
        CallGraph::build(&lexed, &files)
    }

    #[test]
    fn reaches_through_named_calls() {
        let g = graph_of(
            "fn root() { mid(); }
             fn mid() { leaf(1); }
             fn leaf(x: u32) {}
             fn unrelated() {}",
        );
        let r = g.reachable_from(&["root".to_string()]);
        let names: Vec<&str> = r.values().map(|c| c.last().unwrap().as_str()).collect();
        assert!(names.contains(&"leaf"));
        assert!(!names.contains(&"unrelated"));
    }

    #[test]
    fn shadowed_method_calls_do_not_resolve() {
        let g = graph_of(
            "fn root(v: &mut Vec<u32>) { v.push(1); helper(); }
             fn helper() {}
             impl Rings { fn push(&mut self, x: u32) {} }",
        );
        let r = g.reachable_from(&["root".to_string()]);
        let quals: Vec<&str> = r.keys().map(|k| g.info[k].0.as_str()).collect();
        assert!(quals.contains(&"helper"));
        assert!(!quals.contains(&"Rings::push"));
    }

    #[test]
    fn macro_names_are_not_calls() {
        let g = graph_of(
            "fn root() { net_view!(self); real(); }
             fn net_view() {}
             fn real() {}",
        );
        let r = g.reachable_from(&["root".to_string()]);
        let quals: Vec<&str> = r.keys().map(|k| g.info[k].0.as_str()).collect();
        assert!(quals.contains(&"real"));
        assert!(!quals.contains(&"net_view"));
    }
}
