//! Suppression pragmas: `// pf-analyze: allow(<rule>) — <reason>`.
//!
//! A pragma is the *only* way to silence a rule, and it must carry a
//! reason — the report records every suppression so reviewers see the
//! full escape-hatch surface. A pragma applies to the line it shares
//! with code, or — when it stands alone on a comment line — to the next
//! line holding code. Malformed pragmas (unknown rule, missing reason)
//! and pragmas that suppress nothing are themselves violations under
//! the `pragma` meta-rule: a stale or typo'd allowance must not rot in
//! the tree looking authoritative.

use crate::lexer::Lexed;

/// Marker the parser looks for inside comment text.
const MARKER: &str = "pf-analyze:";

/// One parsed suppression pragma.
#[derive(Debug, Clone)]
pub struct Pragma {
    /// 1-indexed line of the comment holding the pragma.
    pub line: u32,
    /// Line whose violations it suppresses.
    pub target_line: u32,
    /// Rule ids listed in `allow(...)`.
    pub rules: Vec<String>,
    /// Mandatory justification after the dash.
    pub reason: String,
}

/// A parse failure, reported as a `pragma` violation.
#[derive(Debug, Clone)]
pub struct PragmaError {
    /// 1-indexed line of the malformed pragma.
    pub line: u32,
    /// What is wrong with it.
    pub message: String,
}

/// Extracts every pragma from a file's comments. `known_rules` guards
/// against typo'd rule ids; `code_lines` (sorted) resolves the target
/// line for stand-alone pragma comments.
pub fn extract(
    lx: &Lexed,
    known_rules: &[&str],
    code_lines: &[u32],
) -> (Vec<Pragma>, Vec<PragmaError>) {
    let mut pragmas = Vec::new();
    let mut errors = Vec::new();
    for c in &lx.comments {
        let Some(pos) = c.text.find(MARKER) else {
            continue;
        };
        // Doc comments *describing* the pragma syntax wrap it in
        // backticks; an odd backtick count before the marker means it
        // is inline code, not a directive.
        if c.text[..pos].chars().filter(|&b| b == '`').count() % 2 == 1 {
            continue;
        }
        let rest = c.text[pos + MARKER.len()..].trim_start();
        match parse_body(rest, known_rules) {
            Ok((rules, reason)) => {
                let has_code_here = code_lines.binary_search(&c.line).is_ok();
                let target_line = if has_code_here {
                    c.line
                } else {
                    // First code line strictly after the comment.
                    match code_lines.binary_search(&(c.line + 1)) {
                        Ok(i) => code_lines[i],
                        Err(i) => code_lines.get(i).copied().unwrap_or(c.line),
                    }
                };
                pragmas.push(Pragma {
                    line: c.line,
                    target_line,
                    rules,
                    reason,
                });
            }
            Err(message) => errors.push(PragmaError {
                line: c.line,
                message,
            }),
        }
    }
    (pragmas, errors)
}

/// Parses `allow(rule[, rule]*) <dash> <reason>`.
fn parse_body(rest: &str, known_rules: &[&str]) -> Result<(Vec<String>, String), String> {
    let rest = rest
        .strip_prefix("allow")
        .ok_or_else(|| "expected `allow(<rule>)` after `pf-analyze:`".to_string())?;
    let rest = rest.trim_start();
    let rest = rest
        .strip_prefix('(')
        .ok_or_else(|| "expected `(` after `allow`".to_string())?;
    let close = rest
        .find(')')
        .ok_or_else(|| "unclosed `allow(` rule list".to_string())?;
    let list = &rest[..close];
    let mut rules = Vec::new();
    for raw in list.split(',') {
        let rule = raw.trim();
        if rule.is_empty() {
            return Err("empty rule id in `allow(...)`".to_string());
        }
        if !known_rules.contains(&rule) {
            return Err(format!("unknown rule `{rule}` in `allow(...)`"));
        }
        rules.push(rule.to_string());
    }
    let after = rest[close + 1..].trim_start();
    // Accept an em dash or one-or-more ASCII hyphens as the separator.
    let reason = after
        .strip_prefix('—')
        .or_else(|| after.strip_prefix('-').map(|a| a.trim_start_matches('-')))
        .map(str::trim)
        .unwrap_or("");
    if reason.is_empty() {
        return Err("missing reason: `pf-analyze: allow(<rule>) — <reason>`".to_string());
    }
    Ok((rules, reason.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    const RULES: &[&str] = &["wall-clock-ban", "rng-discipline"];

    #[test]
    fn same_line_pragma_targets_itself() {
        let src =
            "use std::time::Instant; // pf-analyze: allow(wall-clock-ban) — observability only\n";
        let lx = lex(src);
        let (ps, es) = extract(&lx, RULES, &lx.code_lines());
        assert!(es.is_empty());
        assert_eq!(ps.len(), 1);
        assert_eq!(ps[0].target_line, 1);
        assert_eq!(ps[0].reason, "observability only");
    }

    #[test]
    fn standalone_pragma_targets_next_code_line() {
        let src =
            "// pf-analyze: allow(rng-discipline, wall-clock-ban) - both fine here\n\nlet x = 1;\n";
        let lx = lex(src);
        let (ps, es) = extract(&lx, RULES, &lx.code_lines());
        assert!(es.is_empty());
        assert_eq!(ps[0].target_line, 3);
        assert_eq!(ps[0].rules.len(), 2);
    }

    #[test]
    fn missing_reason_and_unknown_rule_are_errors() {
        let src = "// pf-analyze: allow(wall-clock-ban)\n// pf-analyze: allow(no-such-rule) — x\n";
        let lx = lex(src);
        let (ps, es) = extract(&lx, RULES, &lx.code_lines());
        assert!(ps.is_empty());
        assert_eq!(es.len(), 2);
        assert!(es[0].message.contains("missing reason"));
        assert!(es[1].message.contains("unknown rule"));
    }
}
