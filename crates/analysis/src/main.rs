//! `pf_analyze`: CLI front end for the determinism-contract analyzer.
//!
//! Usage: `pf_analyze [--root DIR] [--format text|json] [--out FILE]`.
//! Exits nonzero when any unsuppressed violation exists — CI runs it as
//! a required gate beside clippy and uploads the JSON report.

// A CLI gate's diagnostics go to stdout by design.
#![allow(clippy::print_stdout)]

use pf_analysis::config::Config;
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut format = String::from("text");
    let mut out_file: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--root" => {
                let Some(v) = args.next() else {
                    eprintln!("pf_analyze: --root needs a value");
                    return ExitCode::from(2);
                };
                root = PathBuf::from(v);
            }
            "--format" => {
                let Some(v) = args.next() else {
                    eprintln!("pf_analyze: --format needs a value");
                    return ExitCode::from(2);
                };
                format = v;
            }
            "--out" => {
                let Some(v) = args.next() else {
                    eprintln!("pf_analyze: --out needs a value");
                    return ExitCode::from(2);
                };
                out_file = Some(PathBuf::from(v));
            }
            "--help" | "-h" => {
                println!(
                    "pf_analyze — workspace determinism-contract static analyzer\n\n\
                     USAGE: pf_analyze [--root DIR] [--format text|json] [--out FILE]\n\n\
                     Exits 0 when every violation is pragma-suppressed, 1 otherwise.\n\
                     --out writes the canonical JSON report regardless of --format."
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("pf_analyze: unknown argument `{other}` (try --help)");
                return ExitCode::from(2);
            }
        }
    }
    if format != "text" && format != "json" {
        eprintln!("pf_analyze: --format must be `text` or `json`");
        return ExitCode::from(2);
    }

    let report = pf_analysis::analyze(&root, &Config::workspace());
    if let Some(path) = &out_file {
        if let Err(e) = std::fs::write(path, report.to_json()) {
            eprintln!("pf_analyze: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }
    match format.as_str() {
        "json" => print!("{}", report.to_json()),
        _ => print!("{}", report.to_text()),
    }
    if report.unsuppressed() > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
