//! The determinism-contract rules.
//!
//! Each rule is a named, testable check producing [`Violation`]s with
//! exact file:line anchors. Token-scan rules (`rng-discipline`,
//! `ordered-iteration`, `wall-clock-ban`, `unsafe-ban`,
//! `panic-discipline`) work per file under their configured scope;
//! `probe-purity` walks the name-resolved call graph from the probe
//! roots and polices everything reachable.

use crate::callgraph::CallGraph;
use crate::config::Config;
use crate::items::FileItems;
use crate::lexer::{Lexed, TokKind};
use crate::report::Violation;

/// Entropy-source identifiers banned by `rng-discipline`: every RNG
/// must be traceable to an explicit seed (`seed_from_u64`/`from_seed`).
const ENTROPY_IDENTS: &[&str] = &[
    "thread_rng",
    "ThreadRng",
    "from_entropy",
    "OsRng",
    "EntropyRng",
    "getrandom",
];

/// Hash-order collections banned by `ordered-iteration` in modules
/// feeding `SimResult` or route tables.
const HASH_IDENTS: &[&str] = &["HashMap", "HashSet", "RandomState", "DefaultHasher"];

/// Wall-clock identifiers banned by `wall-clock-ban`.
const CLOCK_IDENTS: &[&str] = &["Instant", "SystemTime", "UNIX_EPOCH"];

/// Panicking calls/macros banned by `panic-discipline` in hot-path
/// modules. Asserts are *allowed* (invariant checks), so anything
/// inside an assert-family macro invocation is exempt.
const PANIC_CALLS: &[&str] = &["unwrap", "expect"];
const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];
const ASSERT_MACROS: &[&str] = &[
    "assert",
    "assert_eq",
    "assert_ne",
    "debug_assert",
    "debug_assert_eq",
    "debug_assert_ne",
];

/// RNG-drawing method names a probe-pure function must not call.
const RNG_DRAW_METHODS: &[&str] = &[
    "gen",
    "gen_range",
    "gen_bool",
    "gen_ratio",
    "sample",
    "sample_iter",
    "choose",
    "choose_multiple",
    "shuffle",
    "next_u32",
    "next_u64",
    "fill_bytes",
];

/// Interior-mutability types a probe-pure function must not touch.
const INTERIOR_MUT_IDENTS: &[&str] = &["Cell", "RefCell", "UnsafeCell", "OnceCell"];

/// Atomic write/RMW method names a probe-pure function must not call.
const ATOMIC_WRITE_METHODS: &[&str] = &[
    "store",
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "fetch_nand",
    "fetch_max",
    "fetch_min",
    "fetch_update",
    "compare_exchange",
    "compare_exchange_weak",
];

/// Token index ranges covered by assert-family macro invocations.
fn assert_masked_ranges(lx: &Lexed) -> Vec<(usize, usize)> {
    let toks = &lx.toks;
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        let is_assert = matches!(&toks[i].kind, TokKind::Ident(s) if ASSERT_MACROS.contains(&s.as_str()))
            && matches!(toks.get(i + 1).map(|t| &t.kind), Some(TokKind::Punct('!')));
        if !is_assert {
            i += 1;
            continue;
        }
        let Some(open_at) = toks.get(i + 2) else {
            break;
        };
        let (open, close) = match open_at.kind {
            TokKind::Punct('(') => ('(', ')'),
            TokKind::Punct('[') => ('[', ']'),
            TokKind::Punct('{') => ('{', '}'),
            _ => {
                i += 1;
                continue;
            }
        };
        let mut depth = 0i32;
        let mut j = i + 2;
        while j < toks.len() {
            match &toks[j].kind {
                TokKind::Punct(c) if *c == open => depth += 1,
                TokKind::Punct(c) if *c == close => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        out.push((i, j + 1));
        i = j + 1;
    }
    out
}

fn in_ranges(ranges: &[(usize, usize)], i: usize) -> bool {
    ranges.iter().any(|&(lo, hi)| i >= lo && i < hi)
}

/// Runs every token-scan rule on one file.
pub fn scan_file(
    path: &str,
    lx: &Lexed,
    items: &FileItems,
    cfg: &Config,
    out: &mut Vec<Violation>,
) {
    let toks = &lx.toks;
    let rng = cfg.rng_scope.contains(path);
    let ordered = cfg.ordered_scope.contains(path);
    let clock = cfg.wall_clock_scope.contains(path);
    let unsafe_ = cfg.unsafe_scope.contains(path);
    let hot = cfg.hot_path_files.iter().any(|f| f == path);
    let masked = if hot {
        assert_masked_ranges(lx)
    } else {
        Vec::new()
    };
    for (i, t) in toks.iter().enumerate() {
        let TokKind::Ident(name) = &t.kind else {
            continue;
        };
        let name = name.as_str();
        if unsafe_ && name == "unsafe" {
            out.push(Violation {
                rule: "unsafe-ban",
                file: path.to_string(),
                line: t.line,
                message: "`unsafe` is banned workspace-wide (the engine's parity guarantees \
                          are argued over safe code only)"
                    .to_string(),
                suppressed: None,
            });
        }
        if rng && ENTROPY_IDENTS.contains(&name) {
            out.push(Violation {
                rule: "rng-discipline",
                file: path.to_string(),
                line: t.line,
                message: format!(
                    "entropy source `{name}`: every RNG must be constructed from an \
                     explicit seed (`seed_from_u64`/`from_seed`) so runs replay bit-for-bit"
                ),
                suppressed: None,
            });
        }
        if ordered && HASH_IDENTS.contains(&name) && !items.in_test_mod(t.line) {
            out.push(Violation {
                rule: "ordered-iteration",
                file: path.to_string(),
                line: t.line,
                message: format!(
                    "`{name}` in a result-feeding module: hash iteration order is \
                     nondeterministic — use `BTreeMap`/`BTreeSet` or sort explicitly"
                ),
                suppressed: None,
            });
        }
        if clock && CLOCK_IDENTS.contains(&name) {
            out.push(Violation {
                rule: "wall-clock-ban",
                file: path.to_string(),
                line: t.line,
                message: format!(
                    "wall-clock `{name}` outside the bench harness: simulation results \
                     must never depend on host time"
                ),
                suppressed: None,
            });
        }
        if hot && !items.in_test_mod(t.line) && !in_ranges(&masked, i) {
            let next_is = |c: char| matches!(toks.get(i + 1).map(|t| &t.kind), Some(TokKind::Punct(p)) if *p == c);
            if PANIC_CALLS.contains(&name) && next_is('(') {
                out.push(Violation {
                    rule: "panic-discipline",
                    file: path.to_string(),
                    line: t.line,
                    message: format!(
                        "`{name}` in an engine hot-path module: propagate the error or \
                         state the invariant with an assert"
                    ),
                    suppressed: None,
                });
            } else if PANIC_MACROS.contains(&name) && next_is('!') {
                out.push(Violation {
                    rule: "panic-discipline",
                    file: path.to_string(),
                    line: t.line,
                    message: format!("`{name}!` in an engine hot-path module"),
                    suppressed: None,
                });
            }
        }
    }
}

/// Runs `telemetry-purity` over the call graph: everything reachable
/// from the telemetry record hooks must observe, never perturb — no
/// `&mut self` receiver outside the collector types themselves, and no
/// RNG draw anywhere. A hook that mutated engine state or advanced an
/// RNG stream would make results diverge with telemetry on vs off,
/// breaking the zero-cost-when-off contract the parity tests pin.
pub fn check_telemetry_purity(
    graph: &CallGraph,
    lexed: &std::collections::BTreeMap<String, Lexed>,
    bodies: &std::collections::BTreeMap<(String, usize), (usize, usize)>,
    cfg: &Config,
    out: &mut Vec<Violation>,
) {
    let reachable = graph.reachable_from(&cfg.telemetry_roots);
    for (key, chain) in &reachable {
        let (qual, line, has_mut_self) = &graph.info[key];
        let via = chain.join(" → ");
        let collector_type = qual
            .split("::")
            .next()
            .is_some_and(|t| cfg.telemetry_types.iter().any(|c| c == t));
        if *has_mut_self && !collector_type {
            out.push(Violation {
                rule: "telemetry-purity",
                file: key.0.clone(),
                line: *line,
                message: format!(
                    "`{qual}` takes `&mut self` but is reachable from a telemetry record \
                     hook (via {via}): telemetry must observe simulator state, never \
                     mutate it — results are pinned bit-identical with telemetry on/off"
                ),
                suppressed: None,
            });
        }
        let Some(body) = bodies.get(key) else {
            continue;
        };
        let lx = &lexed[&key.0];
        for i in body.0..body.1.min(lx.toks.len()) {
            let TokKind::Ident(name) = &lx.toks[i].kind else {
                continue;
            };
            let name_s = name.as_str();
            let is_call = matches!(
                lx.toks.get(i + 1).map(|t| &t.kind),
                Some(TokKind::Punct('('))
            );
            let is_method = i >= 1 && matches!(lx.toks[i - 1].kind, TokKind::Punct('.'));
            if is_call && is_method && RNG_DRAW_METHODS.contains(&name_s) {
                out.push(Violation {
                    rule: "telemetry-purity",
                    file: key.0.clone(),
                    line: lx.toks[i].line,
                    message: format!(
                        "`{qual}` draws RNG (`{name_s}`) but is reachable from a telemetry \
                         record hook (via {via}): recording must not advance any RNG stream \
                         the simulation reads"
                    ),
                    suppressed: None,
                });
            }
        }
    }
}

/// Runs `probe-purity` over the call graph: everything reachable from
/// the probe roots must be free of `&mut self` receivers, RNG draws,
/// interior mutability, and atomic writes.
pub fn check_probe_purity(
    graph: &CallGraph,
    lexed: &std::collections::BTreeMap<String, Lexed>,
    bodies: &std::collections::BTreeMap<(String, usize), (usize, usize)>,
    cfg: &Config,
    out: &mut Vec<Violation>,
) {
    let reachable = graph.reachable_from(&cfg.probe_roots);
    for (key, chain) in &reachable {
        let (qual, line, has_mut_self) = &graph.info[key];
        let via = chain.join(" → ");
        if *has_mut_self {
            out.push(Violation {
                rule: "probe-purity",
                file: key.0.clone(),
                line: *line,
                message: format!(
                    "`{qual}` takes `&mut self` but is reachable from a probe root \
                     (via {via}): the sharded read-only phase must not mutate shared state"
                ),
                suppressed: None,
            });
        }
        let Some(body) = bodies.get(key) else {
            continue;
        };
        let lx = &lexed[&key.0];
        for i in body.0..body.1.min(lx.toks.len()) {
            let TokKind::Ident(name) = &lx.toks[i].kind else {
                continue;
            };
            let name_s = name.as_str();
            let is_call = matches!(
                lx.toks.get(i + 1).map(|t| &t.kind),
                Some(TokKind::Punct('('))
            );
            let is_method = i >= 1 && matches!(lx.toks[i - 1].kind, TokKind::Punct('.'));
            if is_call && is_method && RNG_DRAW_METHODS.contains(&name_s) {
                out.push(Violation {
                    rule: "probe-purity",
                    file: key.0.clone(),
                    line: lx.toks[i].line,
                    message: format!(
                        "`{qual}` draws RNG (`{name_s}`) but is reachable from a probe \
                         root (via {via}): worker probes share no RNG stream"
                    ),
                    suppressed: None,
                });
            }
            if is_call && is_method && ATOMIC_WRITE_METHODS.contains(&name_s) {
                out.push(Violation {
                    rule: "probe-purity",
                    file: key.0.clone(),
                    line: lx.toks[i].line,
                    message: format!(
                        "`{qual}` performs an atomic write (`{name_s}`) but is reachable \
                         from a probe root (via {via})"
                    ),
                    suppressed: None,
                });
            }
            if INTERIOR_MUT_IDENTS.contains(&name_s) {
                out.push(Violation {
                    rule: "probe-purity",
                    file: key.0.clone(),
                    line: lx.toks[i].line,
                    message: format!(
                        "`{qual}` touches interior mutability (`{name_s}`) but is \
                         reachable from a probe root (via {via})"
                    ),
                    suppressed: None,
                });
            }
        }
    }
}
