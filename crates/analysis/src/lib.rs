//! `pf_analysis`: the workspace determinism-contract static analyzer.
//!
//! The simulator's headline guarantees — bit-for-bit sharded/serial
//! parity, seeded reproducibility of every golden pin — are *contracts
//! about code shape*, not just runtime properties: an unseeded RNG
//! draw, a `HashMap` iteration feeding `SimResult`, or a side effect
//! inside the probe path can break parity on inputs no test covers.
//! This crate turns those contracts into named, testable rules enforced
//! at merge time by the `pf_analyze` binary (wired into CI beside
//! clippy):
//!
//! * **probe-purity** — everything reachable from `route_probe` and the
//!   shard worker read-only phase takes no `&mut self`, draws no RNG,
//!   touches no `Cell`/`RefCell`/atomic writes.
//! * **rng-discipline** — no `thread_rng`/`from_entropy`/OS entropy
//!   anywhere; every RNG is built from an explicit seed.
//! * **telemetry-purity** — everything reachable from the telemetry
//!   record hooks (`trace_*`, `prof_lap`, the epoch snapshot) takes no
//!   `&mut self` outside the collector types and draws no RNG, so
//!   results stay bit-identical with telemetry on or off.
//! * **ordered-iteration** — no `HashMap`/`HashSet` in modules feeding
//!   `SimResult` or route tables; `BTreeMap` or an explicit sort.
//! * **wall-clock-ban** — `Instant`/`SystemTime` only in the bench
//!   harness and pragma'd observability sites.
//! * **unsafe-ban** — no `unsafe` anywhere in the workspace.
//! * **panic-discipline** — no `unwrap`/`expect`/`panic!` in engine
//!   hot-path modules (asserts stating invariants are allowed).
//!
//! Each rule is suppressible only by an inline
//! `// pf-analyze: allow(<rule>) — <reason>` pragma, which the report
//! records; malformed or unused pragmas are violations themselves.
//! The JSON report is deterministic (sorted, timestamp-free) and
//! byte-identical across runs — pinned by an integration test.

pub mod callgraph;
pub mod config;
pub mod items;
pub mod lexer;
pub mod pragma;
pub mod report;
pub mod rules;

use callgraph::CallGraph;
use config::{Config, RULES};
use items::FileItems;
use lexer::Lexed;
use report::{Report, ReportPragma, Violation};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// Directory names never descended into, whatever the configuration.
const ALWAYS_SKIP: &[&str] = &["target", "vendor", ".git", ".github"];

/// Collects every in-scope `.rs` file under `root`, sorted by relative
/// path — the scan order (and therefore the report) is deterministic.
fn walk(root: &Path, cfg: &Config) -> Vec<(String, String)> {
    let mut out = Vec::new();
    for top in &cfg.scan_roots {
        let dir = root.join(top);
        if dir.is_dir() {
            walk_dir(&dir, root, cfg, &mut out);
        }
    }
    out.sort_by(|a, b| a.0.cmp(&b.0));
    out
}

fn walk_dir(dir: &Path, root: &Path, cfg: &Config, out: &mut Vec<(String, String)>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    let mut paths: Vec<PathBuf> = entries.filter_map(|e| e.ok().map(|e| e.path())).collect();
    paths.sort();
    for p in paths {
        let name = p.file_name().and_then(|n| n.to_str()).unwrap_or("");
        let rel = p
            .strip_prefix(root)
            .map(|r| r.to_string_lossy().replace('\\', "/"))
            .unwrap_or_default();
        if cfg.scan_exclude.iter().any(|x| rel.starts_with(x.as_str())) {
            continue;
        }
        if p.is_dir() {
            if !ALWAYS_SKIP.contains(&name) {
                walk_dir(&p, root, cfg, out);
            }
        } else if name.ends_with(".rs") {
            if let Ok(src) = std::fs::read_to_string(&p) {
                out.push((rel, src));
            }
        }
    }
}

/// Runs the full analysis over the workspace at `root`.
pub fn analyze(root: &Path, cfg: &Config) -> Report {
    let files = walk(root, cfg);
    let mut report = Report {
        files_scanned: files.len(),
        ..Report::default()
    };
    let mut lexed: BTreeMap<String, Lexed> = BTreeMap::new();
    let mut items: BTreeMap<String, FileItems> = BTreeMap::new();
    // (file, target_line) → pragma indices into `report.pragmas`.
    let mut pragma_index: BTreeMap<(String, u32), Vec<usize>> = BTreeMap::new();
    for (path, src) in &files {
        let lx = lexer::lex(src);
        let it = items::extract(&lx);
        let (pragmas, errors) = pragma::extract(&lx, RULES, &lx.code_lines());
        for e in errors {
            report.violations.push(Violation {
                rule: "pragma",
                file: path.clone(),
                line: e.line,
                message: format!("malformed pragma: {}", e.message),
                suppressed: None,
            });
        }
        for p in pragmas {
            let idx = report.pragmas.len();
            report.pragmas.push(ReportPragma {
                file: path.clone(),
                line: p.line,
                rules: p.rules,
                reason: p.reason,
            });
            pragma_index
                .entry((path.clone(), p.target_line))
                .or_default()
                .push(idx);
        }
        lexed.insert(path.clone(), lx);
        items.insert(path.clone(), it);
    }

    // Token-scan rules.
    for (path, _) in &files {
        rules::scan_file(
            path,
            &lexed[path],
            &items[path],
            cfg,
            &mut report.violations,
        );
    }

    // Probe purity over the call graph (library sources, test mods
    // excluded: a test helper sharing a hot-path name must not wire the
    // graph into test code).
    let mut graph_fns: BTreeMap<String, Vec<items::FnItem>> = BTreeMap::new();
    let mut bodies: BTreeMap<(String, usize), (usize, usize)> = BTreeMap::new();
    for (path, _) in &files {
        if !cfg.purity_scope.contains(path) {
            continue;
        }
        let it = &items[path];
        let fns: Vec<items::FnItem> = it
            .fns
            .iter()
            .filter(|f| !it.in_test_mod(f.line))
            .cloned()
            .collect();
        for (idx, f) in fns.iter().enumerate() {
            if let Some(b) = f.body {
                bodies.insert((path.clone(), idx), b);
            }
        }
        graph_fns.insert(path.clone(), fns);
    }
    let graph = CallGraph::build(&lexed, &graph_fns);
    rules::check_probe_purity(&graph, &lexed, &bodies, cfg, &mut report.violations);
    rules::check_telemetry_purity(&graph, &lexed, &bodies, cfg, &mut report.violations);

    // Apply suppressions.
    let mut used = vec![false; report.pragmas.len()];
    for v in &mut report.violations {
        if v.rule == "pragma" {
            continue; // the meta-rule cannot be suppressed
        }
        if let Some(idxs) = pragma_index.get(&(v.file.clone(), v.line)) {
            for &i in idxs {
                if report.pragmas[i].rules.iter().any(|r| r == v.rule) {
                    v.suppressed = Some(report.pragmas[i].reason.clone());
                    used[i] = true;
                    break;
                }
            }
        }
    }
    for (i, p) in report.pragmas.iter().enumerate() {
        if !used[i] {
            report.violations.push(Violation {
                rule: "pragma",
                file: p.file.clone(),
                line: p.line,
                message: format!(
                    "unused pragma: allow({}) suppresses no violation — remove it",
                    p.rules.join(", ")
                ),
                suppressed: None,
            });
        }
    }

    report.finalize();
    report
}
