//! Diagnostics and the deterministic report.
//!
//! The JSON report is a merge artifact: it must be byte-identical for
//! identical inputs (pinned by an integration test), so it carries no
//! timestamps or absolute paths, every collection is sorted, and all
//! serialization is hand-rolled here — no float formatting, no map
//! iteration order to trust.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One rule violation (possibly suppressed by a pragma).
#[derive(Debug, Clone)]
pub struct Violation {
    /// Rule id (one of [`crate::config::RULES`]).
    pub rule: &'static str,
    /// Workspace-relative `/`-separated path.
    pub file: String,
    /// 1-indexed line.
    pub line: u32,
    /// Human-readable diagnostic.
    pub message: String,
    /// `Some(reason)` when an inline pragma suppresses it.
    pub suppressed: Option<String>,
}

/// A recorded suppression pragma (kept in the report even though its
/// violation is silenced — the escape-hatch surface stays reviewable).
#[derive(Debug, Clone)]
pub struct ReportPragma {
    /// Workspace-relative path.
    pub file: String,
    /// 1-indexed line of the pragma comment.
    pub line: u32,
    /// Rule ids it allows.
    pub rules: Vec<String>,
    /// Its justification.
    pub reason: String,
}

/// Full analyzer output.
#[derive(Debug, Default)]
pub struct Report {
    /// Every violation, sorted by (file, line, rule, message).
    pub violations: Vec<Violation>,
    /// Every pragma, sorted by (file, line).
    pub pragmas: Vec<ReportPragma>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

impl Report {
    /// Sorts the report into its canonical order and collapses
    /// duplicate findings (two banned tokens on one line say one thing).
    pub fn finalize(&mut self) {
        self.violations.sort_by(|a, b| {
            (&a.file, a.line, a.rule, &a.message).cmp(&(&b.file, b.line, b.rule, &b.message))
        });
        self.violations.dedup_by(|a, b| {
            a.rule == b.rule && a.file == b.file && a.line == b.line && a.message == b.message
        });
        self.pragmas
            .sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    }

    /// Violations not silenced by a pragma.
    pub fn unsuppressed(&self) -> usize {
        self.violations
            .iter()
            .filter(|v| v.suppressed.is_none())
            .count()
    }

    /// Human-readable diagnostics, one line per finding.
    pub fn to_text(&self) -> String {
        let mut s = String::new();
        for v in &self.violations {
            match &v.suppressed {
                None => {
                    let _ = writeln!(s, "{}:{}: [{}] {}", v.file, v.line, v.rule, v.message);
                }
                Some(reason) => {
                    let _ = writeln!(
                        s,
                        "{}:{}: [{}] suppressed: {} (reason: {})",
                        v.file, v.line, v.rule, v.message, reason
                    );
                }
            }
        }
        let _ = writeln!(
            s,
            "pf_analyze: {} file(s), {} violation(s), {} suppressed, {} unsuppressed",
            self.files_scanned,
            self.violations.len(),
            self.violations.len() - self.unsuppressed(),
            self.unsuppressed()
        );
        s
    }

    /// Canonical JSON: sorted, timestamp-free, byte-stable.
    pub fn to_json(&self) -> String {
        let mut by_rule: BTreeMap<&str, (usize, usize)> = BTreeMap::new();
        for v in &self.violations {
            let e = by_rule.entry(v.rule).or_insert((0, 0));
            e.0 += 1;
            if v.suppressed.is_none() {
                e.1 += 1;
            }
        }
        let mut s = String::new();
        s.push_str("{\n  \"tool\": \"pf_analyze\",\n  \"version\": \"0.1.0\",\n");
        let _ = writeln!(s, "  \"files_scanned\": {},", self.files_scanned);
        let _ = writeln!(
            s,
            "  \"summary\": {{\"total\": {}, \"suppressed\": {}, \"unsuppressed\": {}}},",
            self.violations.len(),
            self.violations.len() - self.unsuppressed(),
            self.unsuppressed()
        );
        s.push_str("  \"by_rule\": {");
        for (i, (rule, (total, unsup))) in by_rule.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            let _ = write!(
                s,
                "{}: {{\"total\": {total}, \"unsuppressed\": {unsup}}}",
                json_str(rule)
            );
        }
        s.push_str("},\n  \"violations\": [");
        for (i, v) in self.violations.iter().enumerate() {
            s.push_str(if i > 0 { ",\n    " } else { "\n    " });
            let _ = write!(
                s,
                "{{\"rule\": {}, \"file\": {}, \"line\": {}, \"message\": {}, \"suppressed\": {}, \"reason\": {}}}",
                json_str(v.rule),
                json_str(&v.file),
                v.line,
                json_str(&v.message),
                v.suppressed.is_some(),
                v.suppressed.as_deref().map_or("null".to_string(), json_str)
            );
        }
        s.push_str("\n  ],\n  \"pragmas\": [");
        for (i, p) in self.pragmas.iter().enumerate() {
            s.push_str(if i > 0 { ",\n    " } else { "\n    " });
            let rules: Vec<String> = p.rules.iter().map(|r| json_str(r)).collect();
            let _ = write!(
                s,
                "{{\"file\": {}, \"line\": {}, \"rules\": [{}], \"reason\": {}}}",
                json_str(&p.file),
                p.line,
                rules.join(", "),
                json_str(&p.reason)
            );
        }
        s.push_str("\n  ]\n}\n");
        s
    }
}

/// JSON string escaping (quotes, backslashes, control characters).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_is_sorted_and_stable() {
        let mut r = Report {
            violations: vec![
                Violation {
                    rule: "unsafe-ban",
                    file: "b.rs".into(),
                    line: 2,
                    message: "x".into(),
                    suppressed: None,
                },
                Violation {
                    rule: "rng-discipline",
                    file: "a.rs".into(),
                    line: 9,
                    message: "quote \" here".into(),
                    suppressed: Some("ok".into()),
                },
            ],
            pragmas: vec![],
            files_scanned: 2,
        };
        r.finalize();
        assert_eq!(r.violations[0].file, "a.rs");
        assert_eq!(r.unsuppressed(), 1);
        let j1 = r.to_json();
        let j2 = r.to_json();
        assert_eq!(j1, j2);
        assert!(j1.contains("\\\""));
    }
}
