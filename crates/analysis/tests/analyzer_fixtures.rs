//! Fixture-corpus tests: every rule class produces its exact
//! diagnostics (rule id, file, line, suppression state), and the real
//! workspace analyzes clean with a byte-stable JSON report.

use pf_analysis::analyze;
use pf_analysis::config::{Config, Scope};
use pf_analysis::report::Report;
use std::path::{Path, PathBuf};

fn fixture_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

/// A config mirroring the workspace one, scoped to the corpus: every
/// rule everywhere, `src/hot.rs` as the hot-path module, `route_probe`
/// as the probe root.
fn fixture_config() -> Config {
    Config {
        scan_roots: vec!["src".to_string()],
        scan_exclude: Vec::new(),
        rng_scope: Scope::of(&[""]),
        ordered_scope: Scope::of(&[""]),
        wall_clock_scope: Scope::of(&[""]),
        unsafe_scope: Scope::of(&[""]),
        purity_scope: Scope::of(&[""]),
        hot_path_files: vec!["src/hot.rs".to_string()],
        probe_roots: vec!["route_probe".to_string()],
        telemetry_roots: vec!["record_epoch".to_string()],
        telemetry_types: vec!["TelemetrySink".to_string()],
    }
}

fn run_fixtures() -> Report {
    analyze(&fixture_root(), &fixture_config())
}

#[test]
fn fixture_diagnostics_are_exact() {
    let r = run_fixtures();
    let got: Vec<(&str, &str, u32, bool)> = r
        .violations
        .iter()
        .map(|v| (v.rule, v.file.as_str(), v.line, v.suppressed.is_some()))
        .collect();
    // Canonical report order: sorted by (file, line, rule, message).
    let want: Vec<(&str, &str, u32, bool)> = vec![
        ("wall-clock-ban", "src/bad_clock.rs", 3, false),
        ("wall-clock-ban", "src/bad_clock.rs", 7, true),
        ("ordered-iteration", "src/bad_hash.rs", 3, false),
        ("ordered-iteration", "src/bad_hash.rs", 6, false),
        ("rng-discipline", "src/bad_rng.rs", 3, false),
        ("rng-discipline", "src/bad_rng.rs", 6, false),
        ("rng-discipline", "src/bad_rng.rs", 11, false),
        ("unsafe-ban", "src/bad_unsafe.rs", 4, false),
        ("panic-discipline", "src/hot.rs", 4, false),
        ("panic-discipline", "src/hot.rs", 7, false),
        ("panic-discipline", "src/hot.rs", 18, false),
        ("pragma", "src/pragmas.rs", 3, false),
        ("rng-discipline", "src/pragmas.rs", 4, false),
        ("pragma", "src/pragmas.rs", 6, false),
        ("rng-discipline", "src/pragmas.rs", 11, true),
        ("probe-purity", "src/probe.rs", 8, false),
        ("probe-purity", "src/probe.rs", 13, false),
        ("telemetry-purity", "src/telemetry.rs", 26, false),
        ("telemetry-purity", "src/telemetry.rs", 31, false),
    ];
    assert_eq!(got, want, "full report:\n{}", r.to_text());
    assert_eq!(r.unsuppressed(), 17);
    assert_eq!(r.files_scanned, 9);
}

#[test]
fn fixture_messages_name_the_cause() {
    let r = run_fixtures();
    let msg = |file: &str, line: u32| -> &str {
        &r.violations
            .iter()
            .find(|v| v.file == file && v.line == line)
            .unwrap()
            .message
    };
    // The probe-purity chain names the path from the root.
    assert!(msg("src/probe.rs", 8).contains("route_probe → Net::consume"));
    assert!(msg("src/probe.rs", 13).contains("gen_range"));
    // The telemetry-purity chain names the hook; the collector's own
    // `&mut self` (`TelemetrySink::record_epoch`) is exempt.
    assert!(msg("src/telemetry.rs", 26).contains("TelemetrySink::record_epoch → EngineState::bump"));
    assert!(msg("src/telemetry.rs", 31).contains("gen_range"));
    assert!(!r
        .violations
        .iter()
        .any(|v| v.file == "src/telemetry.rs" && v.line == 10));
    // The assert-masked `unwrap` in `masked()` (hot.rs:13) is exempt.
    assert!(!r
        .violations
        .iter()
        .any(|v| v.file == "src/hot.rs" && v.line == 13));
    // Malformed vs unused pragma diagnostics are distinct.
    assert!(msg("src/pragmas.rs", 3).contains("malformed"));
    assert!(msg("src/pragmas.rs", 6).contains("unused"));
}

#[test]
fn fixture_pragmas_are_recorded_with_reasons() {
    let r = run_fixtures();
    // Both well-formed pragmas (used and unused) land in the report.
    assert_eq!(r.pragmas.len(), 3);
    assert!(r.pragmas.iter().all(|p| !p.reason.is_empty()));
}

#[test]
fn workspace_is_clean_and_report_is_byte_stable() {
    let cfg = Config::workspace();
    let r1 = analyze(&workspace_root(), &cfg);
    assert_eq!(r1.unsuppressed(), 0, "full report:\n{}", r1.to_text());
    assert!(r1.files_scanned > 100, "scan missed the tree");
    // Every suppression in the real tree carries a recorded reason.
    assert!(r1
        .violations
        .iter()
        .all(|v| v.suppressed.as_deref().is_some_and(|s| !s.is_empty())));
    let r2 = analyze(&workspace_root(), &cfg);
    assert_eq!(r1.to_json(), r2.to_json(), "JSON report is not byte-stable");
}

#[test]
fn binary_exit_codes_follow_the_report() {
    use std::process::Command;
    let bin = env!("CARGO_BIN_EXE_pf_analyze");
    // The fixture corpus has unsuppressed violations under any config
    // that scans `src/` — nonzero exit.
    let dirty = Command::new(bin)
        .args([
            "--root",
            fixture_root().to_str().unwrap(),
            "--format",
            "json",
        ])
        .output()
        .expect("spawn pf_analyze");
    assert!(!dirty.status.success());
    // The real workspace is clean — exit 0.
    let clean = Command::new(bin)
        .args([
            "--root",
            workspace_root().to_str().unwrap(),
            "--format",
            "text",
        ])
        .output()
        .expect("spawn pf_analyze");
    assert!(
        clean.status.success(),
        "workspace not clean:\n{}",
        String::from_utf8_lossy(&clean.stdout)
    );
}
