//! fixture: unsafe-ban.

fn peek(v: &[u32]) -> u32 {
    unsafe { *v.get_unchecked(0) }
}
