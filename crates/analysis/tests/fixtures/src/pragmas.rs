//! fixture: pragma meta-rule — malformed, unused, and justified pragmas.

// pf-analyze: allow(rng-discipline)
use rand::thread_rng;

// pf-analyze: allow(unsafe-ban) — nothing unsafe here, deliberately stale
fn noop() {}

fn seeded() -> u32 {
    // pf-analyze: allow(rng-discipline) — fixture: justified entropy use
    let _r = thread_rng();
    0
}
