//! fixture: telemetry-purity — mutation and RNG reachable from a
//! record hook. The collector (`TelemetrySink`) mutating itself is
//! exempt; mutating the observed engine state or drawing RNG is not.

pub struct TelemetrySink {
    rows: Vec<u32>,
}

impl TelemetrySink {
    fn record_epoch(&mut self, eng: &EngineState, rng: &mut SomeRng) {
        self.rows.push(eng.peek());
        eng.bump();
        eng.wobble(rng);
    }
}

pub struct EngineState {
    counter: u32,
}

impl EngineState {
    fn peek(&self) -> u32 {
        self.counter
    }

    fn bump(&mut self) {
        self.counter += 1;
    }

    fn wobble(&self, rng: &mut SomeRng) -> u32 {
        rng.gen_range(0..4)
    }
}
