//! fixture: ordered-iteration — hash collections in library code.

use std::collections::HashMap;

fn tally(xs: &[u32]) -> usize {
    let mut m: HashMap<u32, u32> = HashMap::new();
    for &x in xs {
        *m.entry(x).or_insert(0) += 1;
    }
    m.len()
}

#[cfg(test)]
mod tests {
    #[test]
    fn hashing_in_tests_is_exempt() {
        let mut s = std::collections::HashSet::new();
        s.insert(1u32);
        assert_eq!(s.len(), 1);
    }
}
