//! fixture: wall-clock-ban — host time outside the bench harness.

use std::time::Instant;

fn timed() -> u128 {
    // pf-analyze: allow(wall-clock-ban) — fixture: a justified observability site
    let t0 = Instant::now();
    t0.elapsed().as_nanos()
}
