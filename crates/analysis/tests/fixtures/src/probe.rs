//! fixture: probe-purity — mutation and RNG reachable from a probe root.

pub struct Net {
    credits: u32,
}

impl Net {
    fn consume(&mut self) {
        self.credits -= 1;
    }

    fn jitter(&self, rng: &mut SomeRng) -> u32 {
        rng.gen_range(0..4)
    }
}

fn route_probe(net: &mut Net, rng: &mut SomeRng) -> u32 {
    net.consume();
    net.jitter(rng)
}
