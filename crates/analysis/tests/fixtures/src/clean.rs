//! fixture: clean — no diagnostics.

pub fn add(a: u32, b: u32) -> u32 {
    a + b
}
