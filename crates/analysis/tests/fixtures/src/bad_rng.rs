//! fixture: rng-discipline — entropy sources are banned.

use rand::thread_rng;

fn draw() -> u32 {
    let mut _r = thread_rng();
    0
}

fn entropy_seeded() -> u32 {
    let _r = StdRng::from_entropy();
    0
}
