//! fixture: panic-discipline — a hot-path module (per fixture config).

fn pick(v: &[u32]) -> u32 {
    let x = v.first().unwrap();
    assert!(*x < 9, "fixture invariant");
    if *x == 7 {
        panic!("lucky sevens");
    }
    *x
}

fn masked(v: &[u32]) -> u32 {
    debug_assert_eq!(v.iter().copied().min().unwrap(), v[0]);
    v[0]
}

fn expected(v: &[u32]) -> u32 {
    *v.last().expect("fixture: nonempty")
}
